package paillier

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/big"

	"ppgnn/internal/parallel"
)

// Batch variants of the hot operations. Every phase of PPGNN that touches
// more than one ciphertext — indicator encryption, the LSP's ⊙ and ⨂
// selections over the δ' candidates, CRT decryption of the answer vector,
// threshold share production and combination — is a set of independent
// modular exponentiations, so the batch forms below fan the work across a
// parallel.Pool (nil = the process default, sized by GOMAXPROCS or the
// -workers flag).
//
// Two invariants make the batch forms drop-in replacements for the serial
// loops (DESIGN.md §10):
//
//   - Determinism: randomness is drawn from the io.Reader serially, in
//     index order, BEFORE any fan-out. Seeded test readers are not safe
//     for concurrent use, and serial draws mean a batch call consumes the
//     reader exactly like the serial loop it replaces — outputs are
//     byte-identical for the same seed, at any worker count. Pooled
//     Precomputer factors are likewise taken in index order (LIFO, like
//     repeated take calls).
//
//   - Error discipline: inputs are validated up front, so a malformed
//     element fails the whole batch before any randomness is consumed;
//     mid-batch failures cancel remaining work and the first error is
//     returned, with every worker joined before the call returns.
//
// Concurrent refill ordering contract (ISSUE 10): a Precomputer may be
// refilled (FillCtx, typically from the background refiller) while
// consumers encrypt from it. Both sides are atomic with respect to the
// pool mutex — takeN pops all its factors in one critical section, and
// FillCtx appends its whole chunk in one critical section AFTER the
// exponentiations are done — so a consuming batch observes either none
// or all of any concurrent fill, never a partial one. Within a batch,
// pooled factors are always the LIFO sequence repeated take calls would
// return from the same pool state: a concurrent fill can change WHICH
// factors a racing batch receives (the newest at its takeN instant),
// but never their relative order, split a fill across two batches'
// prefixes, or hand the same factor to two consumers. With the refiller
// paused, EncryptBatch output is byte-identical to the serial loop for
// the same pool state and reader seed at any worker count.

// errNilElement keeps batch validation messages uniform.
var errNilElement = errors.New("paillier: nil element in batch")

// EncryptBatch encrypts every plaintext of ms under ε_s in parallel,
// returning ciphertexts in input order. Equivalent to calling Encrypt in
// a loop (including reader consumption order); see the package notes
// above for the determinism contract.
func (pk *PublicKey) EncryptBatch(ctx context.Context, pl *parallel.Pool, random io.Reader, ms []*big.Int, s int) ([]*Ciphertext, error) {
	if s < 1 || s > MaxS {
		return nil, fmt.Errorf("paillier: degree s=%d out of range [1,%d]", s, MaxS)
	}
	ns := pk.NS(s)
	for i, m := range ms {
		if m == nil {
			return nil, fmt.Errorf("paillier: plaintext %d: %w", i, errNilElement)
		}
		if m.Sign() < 0 || m.Cmp(ns) >= 0 {
			return nil, fmt.Errorf("paillier: plaintext %d out of range [0, N^%d)", i, s)
		}
	}
	// Serial randomness, then parallel exponentiation. The mode is
	// loaded once so every draw and factor of this batch agrees.
	sr := pk.shortRand.Load()
	rs := make([]*big.Int, len(ms))
	for i := range ms {
		r, err := pk.drawEncRand(random, sr)
		if err != nil {
			return nil, fmt.Errorf("paillier: drawing randomness: %w", err)
		}
		rs[i] = r
	}
	pk.warmEnc(s)
	out := make([]*Ciphertext, len(ms))
	err := pl.ForEach(ctx, len(ms), func(i int) error {
		out[i] = pk.encryptWith(ms[i], rs[i], sr, s)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// warmEnc materializes the caches an ε_s encryption reads (the kernel
// contexts for N^i, the inverse factorials, and the short-rand
// fixed-base table when that mode is on), so fanned-out workers hit
// lock-free read paths instead of serializing on first-use population.
func (pk *PublicKey) warmEnc(s int) {
	pk.NS(s + 1)
	pk.invFactorial(s)
	if sr := pk.shortRand.Load(); sr != nil {
		sr.table(pk, s)
	}
}

// RerandomizeBatch re-randomizes every ciphertext in parallel, consuming
// the reader exactly like a serial Rerandomize loop.
func (pk *PublicKey) RerandomizeBatch(ctx context.Context, pl *parallel.Pool, random io.Reader, cs []*Ciphertext) ([]*Ciphertext, error) {
	var degrees [MaxS + 1]bool
	for i, c := range cs {
		if c == nil {
			return nil, fmt.Errorf("paillier: ciphertext %d: %w", i, errNilElement)
		}
		if c.S < 1 || c.S > MaxS {
			return nil, fmt.Errorf("paillier: ciphertext %d degree %d out of range", i, c.S)
		}
		degrees[c.S] = true
	}
	sr := pk.shortRand.Load()
	rs := make([]*big.Int, len(cs))
	for i := range cs {
		r, err := pk.drawEncRand(random, sr)
		if err != nil {
			return nil, fmt.Errorf("paillier: drawing randomness: %w", err)
		}
		rs[i] = r
	}
	for s, present := range degrees {
		if present {
			pk.warmEnc(s)
		}
	}
	zero := new(big.Int)
	out := make([]*Ciphertext, len(cs))
	err := pl.ForEach(ctx, len(cs), func(i int) error {
		z := pk.encryptWith(zero, rs[i], sr, cs[i].S)
		mRerandomize.Inc()
		ct, err := pk.Add(cs[i], z)
		if err != nil {
			return fmt.Errorf("paillier: rerandomizing %d: %w", i, err)
		}
		out[i] = ct
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecryptBatch decrypts every ciphertext in parallel (each one on the CRT
// path), returning plaintexts in input order.
func (sk *PrivateKey) DecryptBatch(ctx context.Context, pl *parallel.Pool, cs []*Ciphertext) ([]*big.Int, error) {
	for i, c := range cs {
		if c == nil {
			return nil, fmt.Errorf("paillier: ciphertext %d: %w", i, errNilElement)
		}
		if c.S < 1 || c.S > MaxS {
			return nil, fmt.Errorf("paillier: ciphertext %d degree %d out of range", i, c.S)
		}
		sk.warmDec(c.S)
	}
	out := make([]*big.Int, len(cs))
	err := pl.ForEach(ctx, len(cs), func(i int) error {
		m, err := sk.Decrypt(cs[i])
		if err != nil {
			return fmt.Errorf("paillier: decrypting %d: %w", i, err)
		}
		out[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecryptLayeredBatch peels `layers` nested encryptions off every
// ciphertext in parallel — the OPT answer vector's [[ [a] ]] unwrap.
func (sk *PrivateKey) DecryptLayeredBatch(ctx context.Context, pl *parallel.Pool, cs []*Ciphertext, layers int) ([]*big.Int, error) {
	if layers < 1 {
		return nil, errors.New("paillier: layers must be >= 1")
	}
	for i, c := range cs {
		if c == nil {
			return nil, fmt.Errorf("paillier: ciphertext %d: %w", i, errNilElement)
		}
		for s := c.S; s >= 1 && s > c.S-layers; s-- {
			sk.warmDec(s)
		}
	}
	out := make([]*big.Int, len(cs))
	err := pl.ForEach(ctx, len(cs), func(i int) error {
		m, err := sk.DecryptLayered(cs[i], layers)
		if err != nil {
			return fmt.Errorf("paillier: decrypting %d: %w", i, err)
		}
		out[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// warmDec materializes the locked per-degree caches decryption reads (CRT
// context, λ^{-1}, N^i, inverse factorials).
func (sk *PrivateKey) warmDec(s int) {
	if s < 1 || s > MaxS {
		return
	}
	sk.crt(s)
	sk.invLambda(s)
	sk.warmEnc(s)
}

// DotProductBatch computes one ⊙ per coefficient row against the shared
// encrypted vector v, in parallel, results in row order.
func (pk *PublicKey) DotProductBatch(ctx context.Context, pl *parallel.Pool, rows [][]*big.Int, v []*Ciphertext) ([]*Ciphertext, error) {
	if len(v) > 0 {
		pk.warmEnc(v[0].S)
	}
	out := make([]*Ciphertext, len(rows))
	err := pl.ForEach(ctx, len(rows), func(i int) error {
		ct, err := pk.DotProduct(rows[i], v)
		if err != nil {
			return fmt.Errorf("paillier: row %d: %w", i, err)
		}
		out[i] = ct
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MatSelectBatch is MatSelect (⨂, Theorem 3.1) with the independent row
// dot-products fanned across the pool.
func (pk *PublicKey) MatSelectBatch(ctx context.Context, pl *parallel.Pool, a [][]*big.Int, v []*Ciphertext) ([]*Ciphertext, error) {
	mMatSelect.Inc()
	return pk.DotProductBatch(ctx, pl, a, v)
}

// LayeredSelectBatch runs the two-phase ε1/ε2 private selection of PPGNN-OPT
// (paper Section 6) over all m answer rows in parallel. cols is the padded
// answer matrix given column-major — len(v1)·len(v2) columns of height m —
// v1 the ε_1 within-block indicator over len(v1) columns, v2 the ε_2 block
// indicator over len(v2) blocks. For each row, phase 1 selects a column
// inside every block with v1; phase 2 selects the block with v2, treating
// the phase-1 ε_1 ciphertexts as ε_2 plaintexts. The result is m ε_2
// ciphertexts, in row order.
func (pk *PublicKey) LayeredSelectBatch(ctx context.Context, pl *parallel.Pool, cols [][]*big.Int, v1, v2 []*Ciphertext) ([]*Ciphertext, error) {
	omega, width := len(v2), len(v1)
	if omega == 0 || width == 0 {
		return nil, errors.New("paillier: empty selection indicator")
	}
	if len(cols) != omega*width {
		return nil, fmt.Errorf("paillier: %d columns for a %d×%d layered selection", len(cols), omega, width)
	}
	for i, c := range v1 {
		if c == nil || c.S != 1 {
			return nil, fmt.Errorf("paillier: v1[%d] is not an ε_1 ciphertext", i)
		}
	}
	for i, c := range v2 {
		if c == nil || c.S != 2 {
			return nil, fmt.Errorf("paillier: v2[%d] is not an ε_2 ciphertext", i)
		}
	}
	m := 0
	for i, col := range cols {
		if i == 0 {
			m = len(col)
		} else if len(col) != m {
			return nil, fmt.Errorf("paillier: column %d height %d != %d", i, len(col), m)
		}
	}
	pk.warmEnc(2)
	out := make([]*Ciphertext, m)
	err := pl.ForEach(ctx, m, func(i int) error {
		phase1 := make([]*big.Int, omega)
		row := make([]*big.Int, width)
		for b := 0; b < omega; b++ {
			for c := 0; c < width; c++ {
				row[c] = cols[b*width+c][i]
			}
			ct, err := pk.DotProduct(row, v1)
			if err != nil {
				return fmt.Errorf("paillier: phase-1 selection row %d: %w", i, err)
			}
			phase1[b] = ct.C
		}
		ct, err := pk.DotProduct(phase1, v2)
		if err != nil {
			return fmt.Errorf("paillier: phase-2 selection row %d: %w", i, err)
		}
		out[i] = ct
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PartialDecryptBatch produces this holder's decryption share for every
// ciphertext, in parallel, in input order.
func (tk *ThresholdKey) PartialDecryptBatch(ctx context.Context, pl *parallel.Pool, share *KeyShare, cs []*Ciphertext) ([]*DecryptionShare, error) {
	for i, c := range cs {
		if c == nil {
			return nil, fmt.Errorf("paillier: ciphertext %d: %w", i, errNilElement)
		}
	}
	out := make([]*DecryptionShare, len(cs))
	err := pl.ForEach(ctx, len(cs), func(i int) error {
		ds, err := tk.PartialDecrypt(share, cs[i])
		if err != nil {
			return fmt.Errorf("paillier: partial decryption %d: %w", i, err)
		}
		out[i] = ds
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CombineBatch combines one share set per ciphertext, in parallel, in
// input order. Each inner slice must hold at least T shares.
func (tk *ThresholdKey) CombineBatch(ctx context.Context, pl *parallel.Pool, shareSets [][]*DecryptionShare) ([]*big.Int, error) {
	tk.warmEnc(tk.SMax)
	out := make([]*big.Int, len(shareSets))
	err := pl.ForEach(ctx, len(shareSets), func(i int) error {
		m, err := tk.Combine(shareSets[i])
		if err != nil {
			return fmt.Errorf("paillier: combining shares for element %d: %w", i, err)
		}
		out[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// takeN pops up to n pooled factors in LIFO order — the order n repeated
// take calls would return them — so batch encryption consumes the pool
// exactly like the serial loop.
func (p *Precomputer) takeN(n int) []*big.Int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > len(p.pool) {
		n = len(p.pool)
	}
	out := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		out[i] = p.pool[len(p.pool)-1-i]
	}
	p.pool = p.pool[:len(p.pool)-n]
	p.depth.Add(int64(-n))
	p.taken.Add(int64(n))
	return out
}

// EncryptBatch encrypts every plaintext using pooled randomness factors
// while they last, then online randomness drawn serially from random, and
// returns the ciphertexts in input order plus how many came from the pool
// (the cost meters' pool/online split). Output bytes match a serial loop
// of Precomputer.Encrypt calls for the same pool state and reader seed.
func (p *Precomputer) EncryptBatch(ctx context.Context, pl *parallel.Pool, random io.Reader, ms []*big.Int) ([]*Ciphertext, int, error) {
	ns := p.pk.NS(p.s)
	for i, m := range ms {
		if m == nil {
			return nil, 0, fmt.Errorf("paillier: plaintext %d: %w", i, errNilElement)
		}
		if m.Sign() < 0 || m.Cmp(ns) >= 0 {
			return nil, 0, fmt.Errorf("paillier: plaintext %d out of range [0, N^%d)", i, p.s)
		}
	}
	pooled := p.takeN(len(ms))
	sr := p.pk.shortRand.Load()
	online := make([]*big.Int, 0, len(ms)-len(pooled))
	for range ms[len(pooled):] {
		r, err := p.pk.drawEncRand(random, sr)
		if err != nil {
			// The popped factors are dropped, never reused: losing pooled
			// randomness is safe, reusing it would break semantic security.
			return nil, 0, fmt.Errorf("paillier: drawing randomness: %w", err)
		}
		online = append(online, r)
	}
	p.pk.warmEnc(p.s)
	mod := p.pk.NS(p.s + 1)
	out := make([]*Ciphertext, len(ms))
	err := pl.ForEach(ctx, len(ms), func(i int) error {
		if i < len(pooled) {
			c := p.pk.onePlusNExp(ms[i], p.s)
			c.Mul(c, pooled[i])
			c.Mod(c, mod)
			mEncPooled.Inc()
			countEnc(p.s)
			out[i] = &Ciphertext{C: c, S: p.s}
			return nil
		}
		mEncOnline.Inc()
		out[i] = p.pk.encryptWith(ms[i], online[i-len(pooled)], sr, p.s)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return out, len(pooled), nil
}

// RerandomizeBatch re-randomizes every ciphertext using pooled factors
// while they last, then online randomness drawn serially from random,
// returning fresh ciphertexts in input order plus how many factors came
// from the pool. Every input must be a degree-p.s ciphertext. Because
// an encryption of zero under factor r^{N^s} IS the factor, the pooled
// path costs one modular multiplication per ciphertext — this is what
// lets a refilled per-tenant pool keep server-side rerandomization off
// the online critical path (DESIGN.md §15).
func (p *Precomputer) RerandomizeBatch(ctx context.Context, pl *parallel.Pool, random io.Reader, cs []*Ciphertext) ([]*Ciphertext, int, error) {
	for i, c := range cs {
		if c == nil {
			return nil, 0, fmt.Errorf("paillier: ciphertext %d: %w", i, errNilElement)
		}
		if c.S != p.s {
			return nil, 0, fmt.Errorf("paillier: ciphertext %d degree %d does not match pool degree %d", i, c.S, p.s)
		}
	}
	pooled := p.takeN(len(cs))
	sr := p.pk.shortRand.Load()
	online := make([]*big.Int, 0, len(cs)-len(pooled))
	for range cs[len(pooled):] {
		r, err := p.pk.drawEncRand(random, sr)
		if err != nil {
			return nil, 0, fmt.Errorf("paillier: drawing randomness: %w", err)
		}
		online = append(online, r)
	}
	p.pk.warmEnc(p.s)
	mod := p.pk.NS(p.s + 1)
	zero := new(big.Int)
	out := make([]*Ciphertext, len(cs))
	err := pl.ForEach(ctx, len(cs), func(i int) error {
		mRerandomize.Inc()
		if i < len(pooled) {
			c := new(big.Int).Mul(cs[i].C, pooled[i])
			c.Mod(c, mod)
			mEncPooled.Inc()
			countEnc(p.s)
			mAdd.Inc()
			out[i] = &Ciphertext{C: c, S: p.s}
			return nil
		}
		mEncOnline.Inc()
		z := p.pk.encryptWith(zero, online[i-len(pooled)], sr, p.s)
		ct, err := p.pk.Add(cs[i], z)
		if err != nil {
			return fmt.Errorf("paillier: rerandomizing %d: %w", i, err)
		}
		out[i] = ct
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return out, len(pooled), nil
}

// FillCtx adds n randomness factors to the pool, fanning the factor
// exponentiations — the entire cost of the offline phase — across the
// pool's workers. Draws stay serial, so the pool contents for a seeded
// reader are independent of the worker count. In short-rand mode the
// factors are table-backed (h^{N^s})^x values; either way the pooled
// value is a complete r^{N^s} mod N^{s+1} factor.
func (p *Precomputer) FillCtx(ctx context.Context, pl *parallel.Pool, random io.Reader, n int) error {
	if n <= 0 {
		return nil
	}
	sr := p.pk.shortRand.Load()
	rs := make([]*big.Int, n)
	for i := range rs {
		r, err := p.pk.drawEncRand(random, sr)
		if err != nil {
			return fmt.Errorf("paillier: precomputing randomness: %w", err)
		}
		rs[i] = r
	}
	p.pk.warmEnc(p.s)
	fresh := make([]*big.Int, n)
	err := pl.MapChunked(ctx, n, 1, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			fresh[i] = p.pk.encFactor(rs[i], sr, p.s)
		}
		return nil
	})
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.pool = append(p.pool, fresh...)
	p.depth.Add(int64(n))
	p.mu.Unlock()
	mPoolFilled.Add(int64(n))
	return nil
}
