package paillier

import (
	"bytes"
	"context"
	"errors"
	"math/big"
	mrand "math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"ppgnn/internal/parallel"
)

// batchPool is the parallel pool the determinism tests fan out on — wide
// enough to exercise real concurrency even on a single-core runner.
func batchPool() *parallel.Pool { return parallel.New(8) }

func batchPlaintexts(k *PrivateKey, s, n int) []*big.Int {
	ns := k.NS(s)
	ms := make([]*big.Int, n)
	for i := range ms {
		m := big.NewInt(int64(i * i * 7919))
		m.Mod(m, ns)
		ms[i] = m
	}
	return ms
}

// TestEncryptBatchMatchesSerial pins the batch determinism contract: for
// the same seeded reader, EncryptBatch at any worker count produces the
// byte-identical ciphertexts of a serial Encrypt loop.
func TestEncryptBatchMatchesSerial(t *testing.T) {
	k := key(t)
	for s := 1; s <= 2; s++ {
		ms := batchPlaintexts(k, s, 9)

		serial := make([]*Ciphertext, len(ms))
		rng := mrand.New(mrand.NewSource(42))
		for i, m := range ms {
			c, err := k.Encrypt(rng, m, s)
			if err != nil {
				t.Fatalf("s=%d serial Encrypt: %v", s, err)
			}
			serial[i] = c
		}

		batch, err := k.EncryptBatch(context.Background(), batchPool(), mrand.New(mrand.NewSource(42)), ms, s)
		if err != nil {
			t.Fatalf("s=%d EncryptBatch: %v", s, err)
		}
		for i := range ms {
			if !bytes.Equal(serial[i].Bytes(&k.PublicKey), batch[i].Bytes(&k.PublicKey)) {
				t.Fatalf("s=%d element %d: batch ciphertext differs from serial", s, i)
			}
		}
	}
}

// TestEncryptBatchRejectsBadPlaintext checks up-front validation: one
// out-of-range element fails the whole batch before randomness is drawn.
func TestEncryptBatchRejectsBadPlaintext(t *testing.T) {
	k := key(t)
	ms := []*big.Int{big.NewInt(1), new(big.Int).Set(k.NS(1)), big.NewInt(2)}
	if _, err := k.EncryptBatch(context.Background(), batchPool(), nil, ms, 1); err == nil {
		t.Fatal("out-of-range plaintext accepted")
	}
	if _, err := k.EncryptBatch(context.Background(), batchPool(), nil, []*big.Int{big.NewInt(1), nil}, 1); err == nil {
		t.Fatal("nil plaintext accepted")
	}
}

// TestDecryptBatchRoundTrip checks DecryptBatch and DecryptLayeredBatch
// against the plaintexts across degrees and the OPT double layer.
func TestDecryptBatchRoundTrip(t *testing.T) {
	k := key(t)
	ctx := context.Background()
	for s := 1; s <= 2; s++ {
		ms := batchPlaintexts(k, s, 7)
		cts, err := k.EncryptBatch(ctx, batchPool(), nil, ms, s)
		if err != nil {
			t.Fatalf("EncryptBatch: %v", err)
		}
		got, err := k.DecryptBatch(ctx, batchPool(), cts)
		if err != nil {
			t.Fatalf("DecryptBatch: %v", err)
		}
		for i := range ms {
			if got[i].Cmp(ms[i]) != 0 {
				t.Fatalf("s=%d element %d: got %v, want %v", s, i, got[i], ms[i])
			}
		}
	}

	// Layered: ε_2(ε_1(m)) unwrapped twice, PPGNN-OPT's answer shape.
	ms := batchPlaintexts(k, 1, 5)
	inner, err := k.EncryptBatch(ctx, batchPool(), nil, ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	innerVals := make([]*big.Int, len(inner))
	for i, c := range inner {
		innerVals[i] = c.C
	}
	outer, err := k.EncryptBatch(ctx, batchPool(), nil, innerVals, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.DecryptLayeredBatch(ctx, batchPool(), outer, 2)
	if err != nil {
		t.Fatalf("DecryptLayeredBatch: %v", err)
	}
	for i := range ms {
		if got[i].Cmp(ms[i]) != 0 {
			t.Fatalf("layered element %d: got %v, want %v", i, got[i], ms[i])
		}
	}
}

// TestPrecomputerBatchMatchesSerial checks pooled-factor order: a batch
// consumes the LIFO pool and then the reader exactly like a serial loop
// of Precomputer.Encrypt calls, so outputs are byte-identical — including
// across the pool-exhaustion boundary.
func TestPrecomputerBatchMatchesSerial(t *testing.T) {
	k := key(t)
	ms := batchPlaintexts(k, 1, 8)
	const fill = 5 // fewer factors than plaintexts: 5 pooled + 3 online

	mkPre := func() *Precomputer {
		pre, err := k.NewPrecomputer(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := pre.Fill(mrand.New(mrand.NewSource(7)), fill); err != nil {
			t.Fatal(err)
		}
		return pre
	}

	serialPre := mkPre()
	rng := mrand.New(mrand.NewSource(13))
	serial := make([]*Ciphertext, len(ms))
	serialPooled := 0
	for i, m := range ms {
		c, fromPool, err := serialPre.Encrypt(rng, m)
		if err != nil {
			t.Fatalf("serial Encrypt: %v", err)
		}
		if fromPool {
			serialPooled++
		}
		serial[i] = c
	}

	batchPre := mkPre()
	batch, pooled, err := batchPre.EncryptBatch(context.Background(), batchPool(), mrand.New(mrand.NewSource(13)), ms)
	if err != nil {
		t.Fatalf("EncryptBatch: %v", err)
	}
	if pooled != serialPooled || pooled != fill {
		t.Fatalf("pooled = %d, serial used %d, want %d", pooled, serialPooled, fill)
	}
	if batchPre.Size() != 0 {
		t.Fatalf("pool not drained: %d left", batchPre.Size())
	}
	for i := range ms {
		if !bytes.Equal(serial[i].Bytes(&k.PublicKey), batch[i].Bytes(&k.PublicKey)) {
			t.Fatalf("element %d: batch ciphertext differs from serial", i)
		}
	}
}

// TestFillCtxDeterministic checks the pool contents are independent of
// the worker count for a seeded reader.
func TestFillCtxDeterministic(t *testing.T) {
	k := key(t)
	fillWith := func(pl *parallel.Pool) []*big.Int {
		pre, err := k.NewPrecomputer(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := pre.FillCtx(context.Background(), pl, mrand.New(mrand.NewSource(3)), 12); err != nil {
			t.Fatal(err)
		}
		return pre.takeN(12)
	}
	serial, par := fillWith(parallel.New(1)), fillWith(parallel.New(8))
	for i := range serial {
		if serial[i].Cmp(par[i]) != 0 {
			t.Fatalf("pool factor %d differs between 1 and 8 workers", i)
		}
	}
}

// TestDotAndMatSelectBatch checks the batch ⊙/⨂ against the serial ops.
func TestDotAndMatSelectBatch(t *testing.T) {
	k := key(t)
	ctx := context.Background()
	const d, m = 6, 5
	vals := batchPlaintexts(k, 1, d)
	v, err := k.EncryptBatch(ctx, batchPool(), nil, vals, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := make([][]*big.Int, m)
	for i := range a {
		row := make([]*big.Int, d)
		for j := range row {
			row[j] = big.NewInt(int64((i + 1) * (j + 2) % 17))
		}
		a[i] = row
	}
	want, err := k.MatSelect(a, v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.MatSelectBatch(ctx, batchPool(), a, v)
	if err != nil {
		t.Fatalf("MatSelectBatch: %v", err)
	}
	for i := range want {
		if want[i].C.Cmp(got[i].C) != 0 {
			t.Fatalf("row %d: batch selection differs from serial", i)
		}
	}
}

// TestLayeredSelectBatch builds a tiny ω×cols OPT selection and checks
// the batch result decrypts to the selected column, and matches the
// serial two-phase computation element-wise.
func TestLayeredSelectBatch(t *testing.T) {
	k := key(t)
	ctx := context.Background()
	const omega, width, m = 2, 3, 4
	sel := 4 // selected candidate index: block 1, column 1
	selB, selC := sel/width, sel%width

	cols := make([][]*big.Int, omega*width)
	for t0 := range cols {
		col := make([]*big.Int, m)
		for i := range col {
			col[i] = big.NewInt(int64(100*t0 + i + 1))
		}
		cols[t0] = col
	}

	mkIndicator := func(n, one, s int) []*Ciphertext {
		ms := make([]*big.Int, n)
		for i := range ms {
			ms[i] = big.NewInt(0)
		}
		ms[one] = big.NewInt(1)
		cts, err := k.EncryptBatch(ctx, batchPool(), nil, ms, s)
		if err != nil {
			t.Fatal(err)
		}
		return cts
	}
	v1 := mkIndicator(width, selC, 1)
	v2 := mkIndicator(omega, selB, 2)

	out, err := k.LayeredSelectBatch(ctx, batchPool(), cols, v1, v2)
	if err != nil {
		t.Fatalf("LayeredSelectBatch: %v", err)
	}
	if len(out) != m {
		t.Fatalf("got %d rows, want %d", len(out), m)
	}

	// Serial reference: phase 1 per block, phase 2 across blocks.
	for i := 0; i < m; i++ {
		phase1 := make([]*big.Int, omega)
		for b := 0; b < omega; b++ {
			row := make([]*big.Int, width)
			for c := 0; c < width; c++ {
				row[c] = cols[b*width+c][i]
			}
			ct, err := k.DotProduct(row, v1)
			if err != nil {
				t.Fatal(err)
			}
			phase1[b] = ct.C
		}
		want, err := k.DotProduct(phase1, v2)
		if err != nil {
			t.Fatal(err)
		}
		if out[i].C.Cmp(want.C) != 0 {
			t.Fatalf("row %d: batch layered selection differs from serial", i)
		}
		// And the plaintext is the selected column's entry.
		got, err := k.DecryptLayered(out[i], 2)
		if err != nil {
			t.Fatal(err)
		}
		if want := cols[sel][i]; got.Cmp(want) != 0 {
			t.Fatalf("row %d: selected %v, want %v", i, got, want)
		}
	}
}

// TestThresholdBatches checks PartialDecryptBatch + CombineBatch against
// their serial counterparts end to end.
func TestThresholdBatches(t *testing.T) {
	tk, shares := thresholdKey(t)
	ctx := context.Background()
	ms := make([]*big.Int, 6)
	for i := range ms {
		ms[i] = big.NewInt(int64(1000 + i))
	}
	cts, err := tk.EncryptBatch(ctx, batchPool(), nil, ms, 1)
	if err != nil {
		t.Fatal(err)
	}

	sets := make([][]*DecryptionShare, len(cts))
	for _, ks := range shares[:tk.T] {
		dss, err := tk.PartialDecryptBatch(ctx, batchPool(), ks, cts)
		if err != nil {
			t.Fatalf("PartialDecryptBatch: %v", err)
		}
		// Cross-check one holder against the serial op.
		ds0, err := tk.PartialDecrypt(ks, cts[0])
		if err != nil {
			t.Fatal(err)
		}
		if dss[0].Value.Cmp(ds0.Value) != 0 {
			t.Fatal("batch partial decryption differs from serial")
		}
		for i, ds := range dss {
			sets[i] = append(sets[i], ds)
		}
	}
	got, err := tk.CombineBatch(ctx, batchPool(), sets)
	if err != nil {
		t.Fatalf("CombineBatch: %v", err)
	}
	for i := range ms {
		if got[i].Cmp(ms[i]) != 0 {
			t.Fatalf("element %d: got %v, want %v", i, got[i], ms[i])
		}
	}
}

// TestBatchHammer is the 64-goroutine -race hammer of the ISSUE: all
// goroutines share one key and one Precomputer while running mixed batch
// ops, so the locked caches (N^i, inverse factorials, CRT contexts, λ^{-1})
// and the pool's LIFO stack all see real contention.
func TestBatchHammer(t *testing.T) {
	k := key(t)
	pre, err := k.NewPrecomputer(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pl := parallel.New(4)

	const goroutines = 64
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			ms := batchPlaintexts(k, 1, 3)
			switch g % 4 {
			case 0:
				if err := pre.FillCtx(ctx, pl, nil, 3); err != nil {
					errs <- err
				}
			case 1:
				if _, _, err := pre.EncryptBatch(ctx, pl, nil, ms); err != nil {
					errs <- err
				}
			case 2:
				cts, err := k.EncryptBatch(ctx, pl, nil, ms, 2)
				if err != nil {
					errs <- err
					return
				}
				if _, err := k.DecryptBatch(ctx, pl, cts); err != nil {
					errs <- err
				}
			case 3:
				cts, err := k.EncryptBatch(ctx, pl, nil, ms, 1)
				if err != nil {
					errs <- err
					return
				}
				rows := [][]*big.Int{{big.NewInt(1), big.NewInt(2), big.NewInt(3)}}
				if _, err := k.DotProductBatch(ctx, pl, rows, cts); err != nil {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestBatchCancellation cancels a batch mid-flight: the call must return
// the context error promptly and leave no goroutines behind.
func TestBatchCancellation(t *testing.T) {
	k := key(t)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ms := batchPlaintexts(k, 1, 64)
	if _, err := k.EncryptBatch(ctx, parallel.New(4), nil, ms, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("EncryptBatch under canceled ctx: err = %v, want context.Canceled", err)
	}

	// Cancel while workers are decrypting a larger batch.
	cts, err := k.EncryptBatch(context.Background(), parallel.New(4), nil, ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := k.DecryptBatch(ctx2, parallel.New(4), cts)
		done <- err
	}()
	cancel2()
	select {
	case err := <-done:
		// Either the cancel won the race, or the batch finished first —
		// both are legal; a hang or a non-ctx failure is not.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("DecryptBatch: err = %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("DecryptBatch did not return after cancel")
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}
