// Package paillier implements the generalized Paillier cryptosystem of
// Damgård and Jurik ("A Generalisation, a Simplification and Some
// Applications of Paillier's Probabilistic Public-Key System", PKC 2001),
// written ε_s in the paper. For s = 1 it is exactly Paillier's scheme.
//
// For a modulus N = pq, plaintexts live in Z_{N^s} and ciphertexts in
// Z*_{N^{s+1}}:
//
//	Enc_s(m; r) = (1+N)^m · r^{N^s}  mod N^{s+1}
//
// The scheme is additively homomorphic:
//
//	Enc(m1) · Enc(m2)   = Enc(m1 + m2)        (⊕, Add)
//	Enc(m)^x            = Enc(x·m)            (⊗, MulPlain)
//	Π Enc(v_i)^{x_i}    = Enc(Σ x_i·v_i)      (⊙, DotProduct)
//
// A distinguishing feature used by PPGNN-OPT (paper Section 6) is layering:
// a ciphertext of ε_1 is an element of Z_{N^2} and therefore a valid
// plaintext of ε_2, so it can be encrypted again under the same key pair
// and privately selected a second time.
//
// The implementation uses only the standard library (math/big, crypto/rand).
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
	"sync/atomic"
	"time"

	"ppgnn/internal/modmath"
)

var one = big.NewInt(1)

// MaxS is the largest ciphertext degree supported. PPGNN needs s ≤ 2; a few
// more are supported so the generalized scheme is usable on its own.
const MaxS = 8

// kernelDisabled gates the modmath fast paths (MultiExp in ⊙/⨂ and the
// threshold combine). It exists for the -kernel-gate experiment and the
// kernel-equivalence tests, which measure and pin the kernel against the
// reference loops; production code never flips it. Both paths return
// byte-identical results.
var kernelDisabled atomic.Bool

// SetKernel enables (true, the default) or disables the modmath
// multi-exponentiation fast paths, returning the previous setting. Only
// benchmarks and equivalence tests should call this; flipping it while
// operations are in flight is safe (it is one atomic) but makes timings
// meaningless.
func SetKernel(on bool) (prev bool) {
	return !kernelDisabled.Swap(!on)
}

func kernelOn() bool { return !kernelDisabled.Load() }

// PublicKey holds the public modulus N and cached powers of N used by the
// homomorphic operations.
type PublicKey struct {
	N *big.Int // product of two large primes

	mu     sync.Mutex
	npow   []*big.Int // npow[i] = N^i, npow[0] = 1
	invfac []*big.Int // invfac[i] = (i!)^{-1} mod N^{MaxS+1}

	// ctxs[s] is the kernel context for modulus N^s, built once per key
	// and read lock-free on every operation (NS and Ctx fast paths).
	ctxs [MaxS + 2]atomic.Pointer[modmath.Ctx]
	// shortRand, when non-nil, holds the Options.ShortRandBits state:
	// the fixed base h and its per-degree power tables.
	shortRand atomic.Pointer[shortRandState]
}

// PrivateKey holds the factorization-derived trapdoor.
type PrivateKey struct {
	PublicKey
	P, Q   *big.Int
	lambda *big.Int // lcm(p-1, q-1)

	mu      sync.Mutex
	invLam  []*big.Int // invLam[s] = lambda^{-1} mod N^s
	crtCtxs []*crtCtx  // per-degree CRT acceleration contexts
}

// Ciphertext is an element of Z*_{N^{S+1}} encrypting a plaintext in Z_{N^S}.
type Ciphertext struct {
	C *big.Int
	S int
}

// GenerateKey creates a key pair whose modulus N has the given bit size.
// Following the paper's setup, bits=1024 is the common choice; tests may use
// smaller keys since correctness is size-independent. random defaults to
// crypto/rand.Reader when nil.
func GenerateKey(random io.Reader, bits int) (*PrivateKey, error) {
	if bits < 16 {
		return nil, fmt.Errorf("paillier: key size %d too small", bits)
	}
	if random == nil {
		random = rand.Reader
	}
	for {
		p, err := rand.Prime(random, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating p: %w", err)
		}
		q, err := rand.Prime(random, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Mul(pm1, qm1)
		lambda.Div(lambda, gcd)
		// Equal-bit-length distinct primes guarantee gcd(lambda, N) = 1,
		// but verify anyway: decryption requires lambda invertible mod N^s.
		if new(big.Int).GCD(nil, nil, lambda, n).Cmp(one) != 0 {
			continue
		}
		key := &PrivateKey{
			PublicKey: PublicKey{N: n},
			P:         p,
			Q:         q,
			lambda:    lambda,
		}
		return key, nil
	}
}

// NewPublicKey reconstructs a public key from its modulus, e.g. after
// receiving it over the wire.
func NewPublicKey(n *big.Int) *PublicKey {
	return &PublicKey{N: new(big.Int).Set(n)}
}

// NS returns N^s. It panics if s is out of range. After the first call
// for a given s the lookup is lock- and allocation-free (one atomic
// load off the kernel context — TestNSLookupZeroAllocs pins this), so
// hot paths can call it per operation instead of caching the modulus
// themselves.
func (pk *PublicKey) NS(s int) *big.Int {
	if s == 0 {
		return one
	}
	return pk.Ctx(s).M
}

// Ctx returns the modmath kernel context for modulus N^s (s ≥ 1),
// built once per key and shared by every operation on that modulus.
func (pk *PublicKey) Ctx(s int) *modmath.Ctx {
	if s < 1 || s > MaxS+1 {
		panic(fmt.Sprintf("paillier: N^%d out of supported range", s))
	}
	if ctx := pk.ctxs[s].Load(); ctx != nil {
		return ctx
	}
	pk.mu.Lock()
	m := pk.nsLocked(s)
	pk.mu.Unlock()
	ctx := modmath.MustCtx(m)
	// First writer wins so all callers share one context.
	if !pk.ctxs[s].CompareAndSwap(nil, ctx) {
		ctx = pk.ctxs[s].Load()
	}
	return ctx
}

func (pk *PublicKey) nsLocked(s int) *big.Int {
	if pk.npow == nil {
		pk.npow = []*big.Int{big.NewInt(1), new(big.Int).Set(pk.N)}
	}
	for len(pk.npow) <= s {
		next := new(big.Int).Mul(pk.npow[len(pk.npow)-1], pk.N)
		pk.npow = append(pk.npow, next)
	}
	return pk.npow[s]
}

// invFactorial returns (i!)^{-1} mod N^{MaxS+1}.
func (pk *PublicKey) invFactorial(i int) *big.Int {
	pk.mu.Lock()
	defer pk.mu.Unlock()
	if pk.invfac == nil {
		pk.invfac = []*big.Int{big.NewInt(1), big.NewInt(1)}
	}
	mod := pk.nsLocked(MaxS + 1)
	for len(pk.invfac) <= i {
		k := int64(len(pk.invfac))
		invK := new(big.Int).ModInverse(big.NewInt(k), mod)
		if invK == nil {
			// Impossible for a well-formed key: k < p,q.
			panic("paillier: factorial not invertible mod N")
		}
		next := new(big.Int).Mul(pk.invfac[len(pk.invfac)-1], invK)
		next.Mod(next, mod)
		pk.invfac = append(pk.invfac, next)
	}
	return pk.invfac[i]
}

// onePlusNExp computes (1+N)^m mod N^{s+1} via the binomial expansion
// Σ_{i=0}^{s} C(m,i)·N^i, which needs only s modular multiplications
// instead of a full |m|-bit exponentiation.
func (pk *PublicKey) onePlusNExp(m *big.Int, s int) *big.Int {
	mod := pk.NS(s + 1)
	res := big.NewInt(1)
	term := new(big.Int).Set(one) // running Π_{j=0}^{i-1} (m-j) mod N^{s+1}
	mj := new(big.Int)
	tmp := new(big.Int)
	for i := 1; i <= s; i++ {
		mj.Sub(m, big.NewInt(int64(i-1)))
		term.Mul(term, mj)
		term.Mod(term, mod)
		// C(m,i)·N^i = term · (i!)^{-1} · N^i  (mod N^{s+1})
		tmp.Mul(term, pk.invFactorial(i))
		tmp.Mod(tmp, mod)
		tmp.Mul(tmp, pk.NS(i))
		tmp.Mod(tmp, mod)
		res.Add(res, tmp)
	}
	res.Mod(res, mod)
	return res
}

// randomUnit draws r uniformly from Z*_N.
func (pk *PublicKey) randomUnit(random io.Reader) (*big.Int, error) {
	if random == nil {
		random = rand.Reader
	}
	gcd := new(big.Int)
	for {
		r, err := rand.Int(random, pk.N)
		if err != nil {
			return nil, err
		}
		if r.Sign() == 0 {
			continue
		}
		if gcd.GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			return r, nil
		}
	}
}

// Options tunes performance/assumption trade-offs of a public key.
// The zero value is the paper-faithful configuration.
type Options struct {
	// ShortRandBits, when > 0, switches encryption randomness from a
	// full-width unit r ∈ Z*_N to r = h^x for a per-key fixed base h
	// and a uniform short exponent x of this many bits, in the style of
	// Damgård–Jurik–Nielsen: h = −u² mod N for a random unit u, and the
	// ciphertext randomness factor (h^{N^s})^x is computed from a
	// precomputed fixed-base table instead of a full-width
	// exponentiation. Decryption is unchanged and yields the identical
	// plaintext; what changes is the *assumption* — semantic security
	// now additionally rests on the indistinguishability of h^x with
	// short x from a uniform 2N-th residue (a short-exponent
	// discrete-log assumption). That is why it ships default-off; see
	// SECURITY.md. Use at least twice the target security level
	// (≥ 224 bits) in deployment.
	ShortRandBits int
	// Rand is the entropy source for deriving the fixed base h
	// (nil = crypto/rand.Reader). Only used when ShortRandBits > 0.
	Rand io.Reader
}

// shortRandState is the realized ShortRandBits configuration: the fixed
// base h and lazily built per-degree fixed-base tables for h^{N^s}.
type shortRandState struct {
	bits  int
	bound *big.Int // 2^bits, the exclusive upper bound for x
	h     *big.Int // −u² mod N

	mu  sync.Mutex
	fbs [MaxS + 1]atomic.Pointer[modmath.FixedBase]
}

// SetOptions applies o to the key. ShortRandBits > 0 enables the
// short-exponent randomness mode for every later encryption under this
// key; 0 restores the default full-width randomness. Do not call
// concurrently with encryptions whose randomness mode must match a
// replay — the switch is atomic but un-ordered relative to in-flight
// operations.
func (pk *PublicKey) SetOptions(o Options) error {
	if o.ShortRandBits == 0 {
		pk.shortRand.Store(nil)
		return nil
	}
	if o.ShortRandBits < 16 {
		return fmt.Errorf("paillier: ShortRandBits=%d too small (minimum 16; ≥224 recommended)", o.ShortRandBits)
	}
	if o.ShortRandBits >= pk.N.BitLen() {
		return fmt.Errorf("paillier: ShortRandBits=%d is not short for a %d-bit modulus", o.ShortRandBits, pk.N.BitLen())
	}
	u, err := pk.randomUnit(o.Rand)
	if err != nil {
		return fmt.Errorf("paillier: deriving short-rand base: %w", err)
	}
	h := new(big.Int).Mul(u, u)
	h.Mod(h, pk.N)
	h.Sub(pk.N, h) // −u² mod N
	sr := &shortRandState{
		bits:  o.ShortRandBits,
		bound: new(big.Int).Lsh(one, uint(o.ShortRandBits)),
		h:     h,
	}
	pk.shortRand.Store(sr)
	return nil
}

// ShortRandBits reports the active short-exponent width (0 = full-width
// randomness).
func (pk *PublicKey) ShortRandBits() int {
	if sr := pk.shortRand.Load(); sr != nil {
		return sr.bits
	}
	return 0
}

// table returns the fixed-base table for h^{N^s} mod N^{s+1}, built on
// first use per degree (a kernel table-build in the obs metrics) and
// lock-free afterwards.
func (sr *shortRandState) table(pk *PublicKey, s int) *modmath.FixedBase {
	if f := sr.fbs[s].Load(); f != nil {
		return f
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if f := sr.fbs[s].Load(); f != nil {
		return f
	}
	ctx := pk.Ctx(s + 1)
	g := ctx.Exp(sr.h, pk.NS(s))
	f, err := ctx.NewFixedBase(g, sr.bits)
	if err != nil {
		// Unreachable for a well-formed state: bits ≥ 16, g ∈ [0, N^{s+1}).
		panic(fmt.Sprintf("paillier: building short-rand table: %v", err))
	}
	sr.fbs[s].Store(f)
	return f
}

// drawEncRand draws one encryption-randomness value for the mode sr
// (nil = full-width): a unit r ∈ Z*_N, or a short exponent x < 2^bits.
// Batch paths draw serially in index order with the mode loaded once,
// so seeded readers are consumed exactly like the serial loop.
func (pk *PublicKey) drawEncRand(random io.Reader, sr *shortRandState) (*big.Int, error) {
	if sr == nil {
		return pk.randomUnit(random)
	}
	if random == nil {
		random = rand.Reader
	}
	return rand.Int(random, sr.bound)
}

// encFactor turns a drawn randomness value into the ciphertext factor:
// r^{N^s} mod N^{s+1} full-width, or the table-backed (h^{N^s})^x in
// short-rand mode. Safe for concurrent use once warmEnc has built the
// needed tables.
func (pk *PublicKey) encFactor(rv *big.Int, sr *shortRandState, s int) *big.Int {
	if sr == nil {
		return pk.Ctx(s+1).Exp(rv, pk.NS(s))
	}
	f, err := sr.table(pk, s).Exp(rv)
	if err != nil {
		// Unreachable: drawEncRand only returns values in [0, 2^bits).
		panic(fmt.Sprintf("paillier: short-rand factor: %v", err))
	}
	return f
}

// Encrypt encrypts m under ε_s. m must lie in [0, N^s). random defaults to
// crypto/rand.Reader when nil.
func (pk *PublicKey) Encrypt(random io.Reader, m *big.Int, s int) (*Ciphertext, error) {
	if s < 1 || s > MaxS {
		return nil, fmt.Errorf("paillier: degree s=%d out of range [1,%d]", s, MaxS)
	}
	if m.Sign() < 0 || m.Cmp(pk.NS(s)) >= 0 {
		return nil, fmt.Errorf("paillier: plaintext out of range [0, N^%d)", s)
	}
	sr := pk.shortRand.Load()
	rv, err := pk.drawEncRand(random, sr)
	if err != nil {
		return nil, fmt.Errorf("paillier: drawing randomness: %w", err)
	}
	return pk.encryptWith(m, rv, sr, s), nil
}

// encryptWith assembles (1+N)^m · factor(rv) mod N^{s+1} with the
// randomness already drawn.
func (pk *PublicKey) encryptWith(m, rv *big.Int, sr *shortRandState, s int) *Ciphertext {
	mod := pk.NS(s + 1)
	c := pk.onePlusNExp(m, s)
	c.Mul(c, pk.encFactor(rv, sr, s))
	c.Mod(c, mod)
	countEnc(s)
	return &Ciphertext{C: c, S: s}
}

// EncryptInt64 is a convenience wrapper around Encrypt for small plaintexts.
func (pk *PublicKey) EncryptInt64(random io.Reader, m int64, s int) (*Ciphertext, error) {
	return pk.Encrypt(random, big.NewInt(m), s)
}

// Rerandomize multiplies c by a fresh encryption of zero, producing a
// ciphertext of the same plaintext that is unlinkable to c.
func (pk *PublicKey) Rerandomize(random io.Reader, c *Ciphertext) (*Ciphertext, error) {
	zero, err := pk.Encrypt(random, new(big.Int), c.S)
	if err != nil {
		return nil, err
	}
	mRerandomize.Inc()
	return pk.Add(c, zero)
}

// Add implements ⊕: the returned ciphertext encrypts the sum of the two
// plaintexts (mod N^s). Both ciphertexts must have the same degree.
func (pk *PublicKey) Add(c1, c2 *Ciphertext) (*Ciphertext, error) {
	if c1.S != c2.S {
		return nil, fmt.Errorf("paillier: adding ciphertexts of degree %d and %d", c1.S, c2.S)
	}
	mod := pk.NS(c1.S + 1)
	c := new(big.Int).Mul(c1.C, c2.C)
	c.Mod(c, mod)
	mAdd.Inc()
	return &Ciphertext{C: c, S: c1.S}, nil
}

// MulPlain implements ⊗: the returned ciphertext encrypts x·m (mod N^s)
// where m is c's plaintext. Negative x is reduced mod N^s.
func (pk *PublicKey) MulPlain(x *big.Int, c *Ciphertext) *Ciphertext {
	e := x
	if x.Sign() < 0 {
		e = new(big.Int).Mod(x, pk.NS(c.S))
	}
	res := pk.Ctx(c.S+1).Exp(c.C, e)
	mMulPlain.Inc()
	return &Ciphertext{C: res, S: c.S}
}

// DotProduct implements ⊙: given plaintext coefficients xs and an encrypted
// vector cs of equal length, it returns Enc(Σ xs[i]·m_i). Zero coefficients
// are skipped, which matters for the sparse indicator vectors of PPGNN.
// The product Π cs[i]^{xs[i]} runs through the kernel's interleaved
// multi-exponentiation, sharing one squaring chain across all δ' terms;
// the result is byte-identical to the reference per-term loop.
func (pk *PublicKey) DotProduct(xs []*big.Int, cs []*Ciphertext) (*Ciphertext, error) {
	if len(xs) != len(cs) {
		return nil, fmt.Errorf("paillier: dot product length mismatch %d vs %d", len(xs), len(cs))
	}
	if len(cs) == 0 {
		return nil, errors.New("paillier: dot product of empty vectors")
	}
	s := cs[0].S
	ctx := pk.Ctx(s + 1)
	ns := pk.NS(s)
	bases := make([]*big.Int, 0, len(cs))
	exps := make([]*big.Int, 0, len(cs))
	for i, c := range cs {
		if c.S != s {
			return nil, fmt.Errorf("paillier: mixed ciphertext degrees in dot product")
		}
		if xs[i].Sign() == 0 {
			continue
		}
		e := xs[i]
		if e.Sign() < 0 {
			e = new(big.Int).Mod(e, ns)
		}
		bases = append(bases, c.C)
		exps = append(exps, e)
	}
	var (
		acc *big.Int
		err error
	)
	if kernelOn() {
		acc, err = ctx.MultiExp(bases, exps)
	} else {
		acc, err = ctx.MultiExpRef(bases, exps)
	}
	if err != nil {
		return nil, fmt.Errorf("paillier: dot product: %w", err)
	}
	mDot.Inc()
	return &Ciphertext{C: acc, S: s}, nil
}

// MatSelect implements the homomorphic matrix multiplication ⨂ of Theorem
// 3.1: A is an m×d plaintext matrix given row-major (A[i] is row i) and v an
// encrypted column vector of length d; the result is the encrypted m-vector
// A·v. When v is an indicator vector this privately selects a column of A.
func (pk *PublicKey) MatSelect(a [][]*big.Int, v []*Ciphertext) ([]*Ciphertext, error) {
	mMatSelect.Inc()
	out := make([]*Ciphertext, len(a))
	for i, row := range a {
		c, err := pk.DotProduct(row, v)
		if err != nil {
			return nil, fmt.Errorf("paillier: row %d: %w", i, err)
		}
		out[i] = c
	}
	return out, nil
}

// Decrypt recovers the plaintext of c. The Damgård–Jurik decryption first
// removes the randomness with the Carmichael exponent λ — c^λ =
// (1+N)^{λ·m} mod N^{s+1} — then extracts the discrete log of base 1+N and
// divides by λ mod N^s.
func (sk *PrivateKey) Decrypt(c *Ciphertext) (*big.Int, error) {
	if c.S < 1 || c.S > MaxS {
		return nil, fmt.Errorf("paillier: ciphertext degree %d out of range", c.S)
	}
	mod := sk.NS(c.S + 1)
	if c.C.Sign() <= 0 || c.C.Cmp(mod) >= 0 {
		return nil, errors.New("paillier: ciphertext out of range")
	}
	defer observeDecrypt(mDecryptCRT, time.Now())
	countDec(c.S)
	// c^λ via CRT over the factorization — the expensive step.
	u := sk.expLambdaCRT(c.C, c.S)
	x, err := sk.logOnePlusN(u, c.S)
	if err != nil {
		return nil, err
	}
	x.Mul(x, sk.invLambda(c.S))
	x.Mod(x, sk.NS(c.S))
	return x, nil
}

// DecryptLayered peels off `layers` nested encryptions: the innermost
// plaintext of Enc_s1(Enc_s2(...m)). PPGNN-OPT produces [[ [a] ]] — an ε_2
// encryption whose plaintext is an ε_1 ciphertext — which this unwraps with
// DecryptLayered(c, 2) using degrees (2, 1).
func (sk *PrivateKey) DecryptLayered(c *Ciphertext, layers int) (*big.Int, error) {
	if layers < 1 {
		return nil, errors.New("paillier: layers must be >= 1")
	}
	cur := c
	for l := 0; l < layers; l++ {
		m, err := sk.Decrypt(cur)
		if err != nil {
			return nil, fmt.Errorf("paillier: layer %d: %w", l, err)
		}
		if l == layers-1 {
			return m, nil
		}
		if cur.S < 2 {
			return nil, errors.New("paillier: inner layer has no room for a ciphertext")
		}
		cur = &Ciphertext{C: m, S: cur.S - 1}
	}
	panic("unreachable")
}

// invLambda returns λ^{-1} mod N^s, cached per degree.
func (sk *PrivateKey) invLambda(s int) *big.Int {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	for len(sk.invLam) <= s {
		sk.invLam = append(sk.invLam, nil)
	}
	if sk.invLam[s] == nil {
		inv := new(big.Int).ModInverse(sk.lambda, sk.NS(s))
		if inv == nil {
			panic("paillier: lambda not invertible mod N^s")
		}
		sk.invLam[s] = inv
	}
	return sk.invLam[s]
}

// logOnePlusN computes x such that u = (1+N)^x mod N^{s+1}, x in [0, N^s).
// This is the iterative algorithm from Damgård–Jurik (PKC 2001, Section
// 4.2). It needs only public information, which is what lets threshold
// share combination (threshold.go) run without the private key.
func (pk *PublicKey) logOnePlusN(u *big.Int, s int) (*big.Int, error) {
	n := pk.N
	x := new(big.Int)
	t1 := new(big.Int)
	t2 := new(big.Int)
	tmp := new(big.Int)
	for j := 1; j <= s; j++ {
		nj := pk.NS(j)
		// t1 = L(u mod N^{j+1}) where L(v) = (v-1)/N; exact by construction.
		t1.Mod(u, pk.NS(j+1))
		t1.Sub(t1, one)
		if new(big.Int).Mod(t1, n).Sign() != 0 {
			return nil, errors.New("paillier: decryption failed (invalid ciphertext)")
		}
		t1.Div(t1, n)
		t2.Set(x)
		xk := new(big.Int).Set(x) // running x - (k-1)
		for k := 2; k <= j; k++ {
			xk.Sub(xk, one)
			t2.Mul(t2, xk)
			t2.Mod(t2, nj)
			// t1 -= t2 * N^{k-1} / k!  (mod N^j)
			tmp.Mul(t2, pk.NS(k-1))
			tmp.Mod(tmp, nj)
			tmp.Mul(tmp, pk.invFactorial(k))
			tmp.Mod(tmp, nj)
			t1.Sub(t1, tmp)
			t1.Mod(t1, nj)
		}
		x.Set(t1)
	}
	return x, nil
}

// CiphertextByteLen returns the serialized size in bytes of a degree-s
// ciphertext under this key: an element of Z_{N^{s+1}} occupies (s+1)·|N|
// bytes. The paper's L_e is CiphertextByteLen(1).
func (pk *PublicKey) CiphertextByteLen(s int) int {
	return (s + 1) * ((pk.N.BitLen() + 7) / 8)
}

// Bytes serializes the ciphertext value zero-padded to the key's fixed
// length so that message sizes are deterministic.
func (c *Ciphertext) Bytes(pk *PublicKey) []byte {
	buf := make([]byte, pk.CiphertextByteLen(c.S))
	c.C.FillBytes(buf)
	return buf
}

// CiphertextFromBytes reverses Ciphertext.Bytes.
func CiphertextFromBytes(b []byte, s int) *Ciphertext {
	return &Ciphertext{C: new(big.Int).SetBytes(b), S: s}
}
