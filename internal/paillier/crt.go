package paillier

import (
	"math/big"

	"ppgnn/internal/modmath"
)

// CRT acceleration: the dominant cost of Damgård–Jurik decryption is the
// exponentiation c^λ mod N^{s+1}. Knowing the factorization, the holder of
// the private key can compute it modulo p^{s+1} and q^{s+1} separately and
// recombine — two half-width exponentiations instead of one full-width
// one, roughly halving decryption time (see BenchmarkDecrypt in the tests).

// crtCtx caches the per-degree CRT moduli (as kernel contexts, so the
// half-width exponentiations share the same cached-modulus machinery as
// every other hot path) and the recombination coefficient.
type crtCtx struct {
	pCtx *modmath.Ctx // modulus p^{s+1}
	qCtx *modmath.Ctx // modulus q^{s+1}
	coef *big.Int     // (p^{s+1})^{-1} mod q^{s+1}
}

// crt returns the CRT context for degree s, cached on the key.
func (sk *PrivateKey) crt(s int) *crtCtx {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	for len(sk.crtCtxs) <= s {
		sk.crtCtxs = append(sk.crtCtxs, nil)
	}
	if sk.crtCtxs[s] == nil {
		pPow := new(big.Int).Exp(sk.P, big.NewInt(int64(s+1)), nil)
		qPow := new(big.Int).Exp(sk.Q, big.NewInt(int64(s+1)), nil)
		coef := new(big.Int).ModInverse(pPow, qPow)
		if coef == nil {
			panic("paillier: p^{s+1} not invertible mod q^{s+1}")
		}
		sk.crtCtxs[s] = &crtCtx{
			pCtx: modmath.MustCtx(pPow),
			qCtx: modmath.MustCtx(qPow),
			coef: coef,
		}
	}
	return sk.crtCtxs[s]
}

// expLambdaCRT computes c^λ mod N^{s+1} via the factorization.
func (sk *PrivateKey) expLambdaCRT(c *big.Int, s int) *big.Int {
	ctx := sk.crt(s)
	pPow, qPow := ctx.pCtx.M, ctx.qCtx.M
	up := ctx.pCtx.Exp(new(big.Int).Mod(c, pPow), sk.lambda)
	uq := ctx.qCtx.Exp(new(big.Int).Mod(c, qPow), sk.lambda)
	// u = up + p^{s+1} · ((uq − up) · coef mod q^{s+1})
	t := new(big.Int).Sub(uq, up)
	t.Mod(t, qPow)
	t.Mul(t, ctx.coef)
	t.Mod(t, qPow)
	t.Mul(t, pPow)
	t.Add(t, up)
	return t
}
