package paillier

import (
	"time"

	"ppgnn/internal/obs"
)

// Crypto telemetry (DESIGN.md §9). The paillier package reports to the
// process-global obs.Default registry: the crypto layer has no per-query
// object to hang a registry on, and its counters are the paper's own
// cost-model unit ("number of ε_s operations", Section 5) which only
// makes sense aggregated per process. Counters are pre-bound here so the
// hot paths pay one atomic add, not a registry lookup.
//
// Privacy: every metric below is an aggregate count or duration with
// labels drawn from the closed enums in obs/contract.go — op names,
// degree ∈ {1,2,other}, decrypt path ∈ {crt,threshold}, randomness
// source ∈ {pool,online}. No plaintext, ciphertext, or key material is
// ever observable here.
var (
	mEncDeg1      = opCounter("enc", "1")
	mEncDeg2      = opCounter("enc", "2")
	mEncDegOther  = opCounter("enc", obs.OtherValue)
	mDecDeg1      = opCounter("dec", "1")
	mDecDeg2      = opCounter("dec", "2")
	mDecDegOther  = opCounter("dec", obs.OtherValue)
	mAdd          = opCounter("add", "")
	mMulPlain     = opCounter("mul_plain", "")
	mDot          = opCounter("dot", "")
	mMatSelect    = opCounter("mat_select", "")
	mRerandomize  = opCounter("rerandomize", "")
	mPartialDec   = opCounter("partial_dec", "")
	mCombine      = opCounter("combine", "")
	mDecryptCRT   = obs.Default().Histogram("paillier_decrypt_seconds", obs.TimeBuckets, obs.L("path", "crt"))
	mDecryptThres = obs.Default().Histogram("paillier_decrypt_seconds", obs.TimeBuckets, obs.L("path", "threshold"))

	// Precomputer pool telemetry: the depth gauge is per-Precomputer —
	// labeled by degree and tenant slot via poolDepthGauge, so the
	// coordinator's s=1/s=2 pools and any per-tenant refilled pools stay
	// separately observable (one process aggregate is meaningless under
	// multi-pool traffic). The pool/online split is the hit/miss ratio —
	// the signal that sizes offline randomness generation.
	mPoolFilled = obs.Default().Counter("paillier_precompute_filled_total")
	mEncPooled  = obs.Default().Counter("paillier_precompute_encrypt_total", obs.L("source", "pool"))
	mEncOnline  = obs.Default().Counter("paillier_precompute_encrypt_total", obs.L("source", "online"))

	// Background refiller (DESIGN.md §15): fill rounds, factors produced,
	// and the summed self-sized target across live refillers.
	mRefillFills   = obs.Default().Counter("paillier_pool_refill_fills_total")
	mRefillFactors = obs.Default().Counter("paillier_pool_refill_factors_total")
	gRefillTarget  = obs.Default().Gauge("paillier_pool_refill_target")

	// Shared encrypted-constant cache (DESIGN.md §15): hit/miss only.
	// Keys and plaintexts never reach a metric.
	mCacheHit  = obs.Default().Counter("paillier_enc_cache_total", obs.L("result", "hit"))
	mCacheMiss = obs.Default().Counter("paillier_enc_cache_total", obs.L("result", "miss"))
)

// degreeLabel buckets an ε_s degree into the closed "degree" enum.
func degreeLabel(s int) string {
	switch s {
	case 1:
		return "1"
	case 2:
		return "2"
	default:
		return obs.OtherValue
	}
}

// poolDepthGauge binds the per-Precomputer depth gauge for a degree and
// tenant slot. Slots outside the closed tenant enum clamp to "other";
// tenant names never reach the label.
func poolDepthGauge(s int, tenant string) *obs.Gauge {
	return obs.Default().Gauge("paillier_precompute_pool_depth",
		obs.L("degree", degreeLabel(s)), obs.L("tenant", obs.ClampLabel("tenant", tenant)))
}

func opCounter(op, degree string) *obs.Counter {
	labels := []obs.Label{obs.L("op", op)}
	if degree != "" {
		labels = append(labels, obs.L("degree", degree))
	}
	return obs.Default().Counter("paillier_ops_total", labels...)
}

// countEnc/countDec bucket by the protocol-relevant degrees.
func countEnc(s int) {
	switch s {
	case 1:
		mEncDeg1.Inc()
	case 2:
		mEncDeg2.Inc()
	default:
		mEncDegOther.Inc()
	}
}

func countDec(s int) {
	switch s {
	case 1:
		mDecDeg1.Inc()
	case 2:
		mDecDeg2.Inc()
	default:
		mDecDegOther.Inc()
	}
}

// observeDecrypt records one decryption's wall time on the given path.
func observeDecrypt(h *obs.Histogram, start time.Time) {
	h.Observe(time.Since(start).Seconds())
}
