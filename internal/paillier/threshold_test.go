package paillier

import (
	"math/big"
	"testing"
)

// thresholdKeyBits keeps safe-prime generation fast in tests.
const thresholdKeyBits = 192

var cachedTK *ThresholdKey
var cachedShares []*KeyShare

func thresholdKey(t testing.TB) (*ThresholdKey, []*KeyShare) {
	t.Helper()
	if cachedTK == nil {
		tk, shares, err := GenerateThresholdKey(nil, thresholdKeyBits, 5, 3, 2)
		if err != nil {
			t.Fatalf("GenerateThresholdKey: %v", err)
		}
		cachedTK = tk
		cachedShares = shares
	}
	return cachedTK, cachedShares
}

func TestThresholdDecryptRoundTrip(t *testing.T) {
	tk, shares := thresholdKey(t)
	for s := 1; s <= 2; s++ {
		for _, mval := range []int64{0, 1, 424242} {
			m := big.NewInt(mval)
			ct, err := tk.Encrypt(nil, m, s)
			if err != nil {
				t.Fatal(err)
			}
			// Use shares 1..3 (the threshold).
			var ds []*DecryptionShare
			for _, sh := range shares[:3] {
				d, err := tk.PartialDecrypt(sh, ct)
				if err != nil {
					t.Fatal(err)
				}
				ds = append(ds, d)
			}
			got, err := tk.Combine(ds)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(m) != 0 {
				t.Fatalf("s=%d m=%d: threshold decryption = %v", s, mval, got)
			}
		}
	}
}

// Any subset of t shares must give the same plaintext.
func TestThresholdAnySubset(t *testing.T) {
	tk, shares := thresholdKey(t)
	m := big.NewInt(987654)
	ct, err := tk.Encrypt(nil, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]*DecryptionShare, len(shares))
	for i, sh := range shares {
		all[i], err = tk.PartialDecrypt(sh, ct)
		if err != nil {
			t.Fatal(err)
		}
	}
	subsets := [][]int{{0, 1, 2}, {0, 1, 3}, {2, 3, 4}, {0, 2, 4}, {1, 3, 4}}
	for _, idx := range subsets {
		ds := []*DecryptionShare{all[idx[0]], all[idx[1]], all[idx[2]]}
		got, err := tk.Combine(ds)
		if err != nil {
			t.Fatalf("subset %v: %v", idx, err)
		}
		if got.Cmp(m) != 0 {
			t.Fatalf("subset %v decrypted %v", idx, got)
		}
	}
}

// Below-threshold share counts are rejected; t−1 shares cannot recover the
// plaintext even if force-combined through a doctored key.
func TestThresholdInsufficientShares(t *testing.T) {
	tk, shares := thresholdKey(t)
	ct, _ := tk.Encrypt(nil, big.NewInt(5), 1)
	d0, _ := tk.PartialDecrypt(shares[0], ct)
	d1, _ := tk.PartialDecrypt(shares[1], ct)
	if _, err := tk.Combine([]*DecryptionShare{d0, d1}); err == nil {
		t.Fatal("combined below threshold")
	}
}

func TestThresholdShareValidation(t *testing.T) {
	tk, shares := thresholdKey(t)
	ct, _ := tk.Encrypt(nil, big.NewInt(5), 1)
	d0, _ := tk.PartialDecrypt(shares[0], ct)
	d1, _ := tk.PartialDecrypt(shares[1], ct)
	ct2, _ := tk.Encrypt(nil, big.NewInt(5), 2)
	dOther, _ := tk.PartialDecrypt(shares[2], ct2)

	if _, err := tk.Combine([]*DecryptionShare{d0, d1, d1}); err == nil {
		t.Error("duplicate share accepted")
	}
	if _, err := tk.Combine([]*DecryptionShare{d0, d1, dOther}); err == nil {
		t.Error("mixed-degree shares accepted")
	}
	bad := &DecryptionShare{Index: 99, S: 1, Value: big.NewInt(2)}
	if _, err := tk.Combine([]*DecryptionShare{d0, d1, bad}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := tk.PartialDecrypt(shares[0], &Ciphertext{C: big.NewInt(0), S: 1}); err == nil {
		t.Error("zero ciphertext accepted")
	}
	if _, err := tk.PartialDecrypt(shares[0], &Ciphertext{C: big.NewInt(2), S: 5}); err == nil {
		t.Error("degree above SMax accepted")
	}
}

// Threshold decryption must compose with the homomorphic operations: the
// group can jointly decrypt a privately selected answer.
func TestThresholdWithHomomorphicSelection(t *testing.T) {
	tk, shares := thresholdKey(t)
	answers := []*big.Int{big.NewInt(111), big.NewInt(222), big.NewInt(333)}
	v := make([]*Ciphertext, len(answers))
	for i := range v {
		bit := int64(0)
		if i == 1 {
			bit = 1
		}
		ct, err := tk.EncryptInt64(nil, bit, 1)
		if err != nil {
			t.Fatal(err)
		}
		v[i] = ct
	}
	sel, err := tk.DotProduct(answers, v)
	if err != nil {
		t.Fatal(err)
	}
	var ds []*DecryptionShare
	for _, sh := range []*KeyShare{shares[4], shares[0], shares[2]} {
		d, err := tk.PartialDecrypt(sh, sel)
		if err != nil {
			t.Fatal(err)
		}
		ds = append(ds, d)
	}
	got, err := tk.Combine(ds)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(answers[1]) != 0 {
		t.Fatalf("threshold-decrypted selection = %v, want 222", got)
	}
}

func TestGenerateThresholdKeyValidation(t *testing.T) {
	cases := []struct{ bits, w, tt, smax int }{
		{16, 3, 2, 1},  // tiny key
		{192, 2, 3, 1}, // t > w
		{192, 3, 0, 1}, // t = 0
		{192, 3, 2, 0}, // sMax = 0
	}
	for _, c := range cases {
		if _, _, err := GenerateThresholdKey(nil, c.bits, c.w, c.tt, c.smax); err == nil {
			t.Errorf("GenerateThresholdKey(%+v) accepted", c)
		}
	}
}

func TestFactorial(t *testing.T) {
	if factorial(5).Int64() != 120 {
		t.Fatalf("5! = %v", factorial(5))
	}
	if factorial(1).Int64() != 1 || factorial(0).Int64() != 1 {
		t.Fatal("small factorial wrong")
	}
}
