package paillier

import (
	"bytes"
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

// testKeyBits keeps unit tests fast; correctness is key-size independent.
const testKeyBits = 256

var testKey *PrivateKey

func key(t testing.TB) *PrivateKey {
	t.Helper()
	if testKey == nil {
		k, err := GenerateKey(nil, testKeyBits)
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		testKey = k
	}
	return testKey
}

func TestGenerateKeyProperties(t *testing.T) {
	k := key(t)
	if got := k.N.BitLen(); got != testKeyBits {
		t.Errorf("N bit length = %d, want %d", got, testKeyBits)
	}
	if new(big.Int).Mul(k.P, k.Q).Cmp(k.N) != 0 {
		t.Error("N != P*Q")
	}
	if !k.P.ProbablyPrime(20) || !k.Q.ProbablyPrime(20) {
		t.Error("P or Q not prime")
	}
}

func TestGenerateKeyTooSmall(t *testing.T) {
	if _, err := GenerateKey(nil, 8); err == nil {
		t.Fatal("expected error for 8-bit key")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	k := key(t)
	for s := 1; s <= 4; s++ {
		ns := k.NS(s)
		values := []*big.Int{
			big.NewInt(0),
			big.NewInt(1),
			big.NewInt(123456789),
			new(big.Int).Sub(ns, one), // maximum plaintext
			new(big.Int).Rsh(ns, 1),   // middle of the range
		}
		for _, m := range values {
			c, err := k.Encrypt(nil, m, s)
			if err != nil {
				t.Fatalf("s=%d Encrypt(%v): %v", s, m, err)
			}
			got, err := k.Decrypt(c)
			if err != nil {
				t.Fatalf("s=%d Decrypt: %v", s, err)
			}
			if got.Cmp(m) != 0 {
				t.Fatalf("s=%d roundtrip = %v, want %v", s, got, m)
			}
		}
	}
}

func TestEncryptRejectsOutOfRange(t *testing.T) {
	k := key(t)
	if _, err := k.Encrypt(nil, big.NewInt(-1), 1); err == nil {
		t.Error("negative plaintext accepted")
	}
	if _, err := k.Encrypt(nil, k.NS(1), 1); err == nil {
		t.Error("plaintext == N accepted for s=1")
	}
	if _, err := k.Encrypt(nil, big.NewInt(1), 0); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := k.Encrypt(nil, big.NewInt(1), MaxS+1); err == nil {
		t.Error("degree > MaxS accepted")
	}
}

func TestEncryptionIsProbabilistic(t *testing.T) {
	k := key(t)
	m := big.NewInt(42)
	c1, err := k.Encrypt(nil, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := k.Encrypt(nil, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c1.C.Cmp(c2.C) == 0 {
		t.Fatal("two encryptions of the same plaintext were identical")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	k := key(t)
	for s := 1; s <= 2; s++ {
		m1, m2 := big.NewInt(1234), big.NewInt(98765)
		c1, _ := k.Encrypt(nil, m1, s)
		c2, _ := k.Encrypt(nil, m2, s)
		sum, err := k.Add(c1, c2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.Decrypt(sum)
		if err != nil {
			t.Fatal(err)
		}
		if want := new(big.Int).Add(m1, m2); got.Cmp(want) != 0 {
			t.Fatalf("s=%d Add = %v, want %v", s, got, want)
		}
	}
}

func TestHomomorphicAddWraps(t *testing.T) {
	k := key(t)
	ns := k.NS(1)
	m1 := new(big.Int).Sub(ns, one) // N-1
	m2 := big.NewInt(5)
	c1, _ := k.Encrypt(nil, m1, 1)
	c2, _ := k.Encrypt(nil, m2, 1)
	sum, _ := k.Add(c1, c2)
	got, _ := k.Decrypt(sum)
	if want := big.NewInt(4); got.Cmp(want) != 0 { // (N-1+5) mod N = 4
		t.Fatalf("wrapped Add = %v, want 4", got)
	}
}

func TestAddDegreeMismatch(t *testing.T) {
	k := key(t)
	c1, _ := k.EncryptInt64(nil, 1, 1)
	c2, _ := k.EncryptInt64(nil, 1, 2)
	if _, err := k.Add(c1, c2); err == nil {
		t.Fatal("Add accepted mismatched degrees")
	}
}

func TestHomomorphicMulPlain(t *testing.T) {
	k := key(t)
	m := big.NewInt(77)
	c, _ := k.Encrypt(nil, m, 1)
	prod := k.MulPlain(big.NewInt(13), c)
	got, _ := k.Decrypt(prod)
	if want := big.NewInt(77 * 13); got.Cmp(want) != 0 {
		t.Fatalf("MulPlain = %v, want %v", got, want)
	}
}

func TestMulPlainNegative(t *testing.T) {
	k := key(t)
	c, _ := k.EncryptInt64(nil, 10, 1)
	prod := k.MulPlain(big.NewInt(-3), c)
	got, _ := k.Decrypt(prod)
	want := new(big.Int).Sub(k.NS(1), big.NewInt(30)) // -30 mod N
	if got.Cmp(want) != 0 {
		t.Fatalf("MulPlain(-3) = %v, want %v", got, want)
	}
}

func TestMulPlainZero(t *testing.T) {
	k := key(t)
	c, _ := k.EncryptInt64(nil, 999, 1)
	got, _ := k.Decrypt(k.MulPlain(new(big.Int), c))
	if got.Sign() != 0 {
		t.Fatalf("MulPlain(0) decrypts to %v, want 0", got)
	}
}

// Property-based check of the homomorphism laws from Eqn (2) and (3).
func TestHomomorphismProperties(t *testing.T) {
	k := key(t)
	rng := mrand.New(mrand.NewSource(11))
	cfg := &quick.Config{MaxCount: 25, Rand: rng}

	addLaw := func(a, b uint32) bool {
		ca, _ := k.EncryptInt64(nil, int64(a), 1)
		cb, _ := k.EncryptInt64(nil, int64(b), 1)
		sum, err := k.Add(ca, cb)
		if err != nil {
			return false
		}
		got, err := k.Decrypt(sum)
		return err == nil && got.Int64() == int64(a)+int64(b)
	}
	if err := quick.Check(addLaw, cfg); err != nil {
		t.Errorf("add law: %v", err)
	}

	mulLaw := func(a uint32, x uint16) bool {
		ca, _ := k.EncryptInt64(nil, int64(a), 1)
		got, err := k.Decrypt(k.MulPlain(big.NewInt(int64(x)), ca))
		return err == nil && got.Int64() == int64(a)*int64(x)
	}
	if err := quick.Check(mulLaw, cfg); err != nil {
		t.Errorf("mul law: %v", err)
	}
}

func TestDotProduct(t *testing.T) {
	k := key(t)
	xs := []*big.Int{big.NewInt(3), big.NewInt(0), big.NewInt(7), big.NewInt(2)}
	ms := []int64{10, 999, 5, 1}
	cs := make([]*Ciphertext, len(ms))
	for i, m := range ms {
		cs[i], _ = k.EncryptInt64(nil, m, 1)
	}
	dot, err := k.DotProduct(xs, cs)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := k.Decrypt(dot)
	if want := int64(3*10 + 0*999 + 7*5 + 2*1); got.Int64() != want {
		t.Fatalf("DotProduct = %v, want %v", got, want)
	}
}

func TestDotProductErrors(t *testing.T) {
	k := key(t)
	c, _ := k.EncryptInt64(nil, 1, 1)
	if _, err := k.DotProduct([]*big.Int{one}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := k.DotProduct(nil, nil); err == nil {
		t.Error("empty vectors accepted")
	}
	c2, _ := k.EncryptInt64(nil, 1, 2)
	if _, err := k.DotProduct([]*big.Int{one, one}, []*Ciphertext{c, c2}); err == nil {
		t.Error("mixed degrees accepted")
	}
}

// TestPrivateSelection exercises Theorem 3.1: multiplying the answer matrix
// with an encrypted indicator vector selects exactly one column.
func TestPrivateSelection(t *testing.T) {
	k := key(t)
	const m, d = 3, 5
	a := make([][]*big.Int, m)
	for i := range a {
		a[i] = make([]*big.Int, d)
		for j := range a[i] {
			a[i][j] = big.NewInt(int64(100*i + j))
		}
	}
	for target := 0; target < d; target++ {
		v := make([]*Ciphertext, d)
		for j := 0; j < d; j++ {
			bit := int64(0)
			if j == target {
				bit = 1
			}
			c, err := k.EncryptInt64(nil, bit, 1)
			if err != nil {
				t.Fatal(err)
			}
			v[j] = c
		}
		sel, err := k.MatSelect(a, v)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < m; i++ {
			got, err := k.Decrypt(sel[i])
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(a[i][target]) != 0 {
				t.Fatalf("selection of column %d row %d = %v, want %v", target, i, got, a[i][target])
			}
		}
	}
}

// TestLayeredEncryption verifies the ε_2-over-ε_1 layering of Section 6:
// an ε_1 ciphertext is a valid ε_2 plaintext, and the two-phase selection
// can be unwrapped by decrypting twice.
func TestLayeredEncryption(t *testing.T) {
	k := key(t)
	m := big.NewInt(31337)
	inner, err := k.Encrypt(nil, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if inner.C.Cmp(k.NS(2)) >= 0 {
		t.Fatal("ε_1 ciphertext not a valid ε_2 plaintext")
	}
	outer, err := k.Encrypt(nil, inner.C, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.DecryptLayered(outer, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(m) != 0 {
		t.Fatalf("layered decryption = %v, want %v", got, m)
	}
}

// TestTwoPhaseSelection reproduces the optimization example of Figure 4:
// select element 7 of an 8-vector using v1 of length 4 (ε_1) and v2 of
// length 2 (ε_2).
func TestTwoPhaseSelection(t *testing.T) {
	k := key(t)
	answers := make([]*big.Int, 8)
	for i := range answers {
		answers[i] = big.NewInt(int64(1000 + i))
	}
	const target = 6 // 0-based position 7 in the paper's 1-based example
	const omega = 2  // length of v2; v1 has length 8/2 = 4
	cols := len(answers) / omega

	v1 := make([]*Ciphertext, cols)
	v2 := make([]*Ciphertext, omega)
	for j := 0; j < cols; j++ {
		bit := int64(0)
		if j == target%cols {
			bit = 1
		}
		v1[j], _ = k.EncryptInt64(nil, bit, 1)
	}
	for j := 0; j < omega; j++ {
		bit := int64(0)
		if j == target/cols {
			bit = 1
		}
		v2[j], _ = k.EncryptInt64(nil, bit, 2)
	}

	// Phase 1: per sub-matrix selection with v1 under ε_1.
	phase1 := make([]*Ciphertext, omega)
	for blk := 0; blk < omega; blk++ {
		row := answers[blk*cols : (blk+1)*cols]
		sel, err := k.MatSelect([][]*big.Int{row}, v1)
		if err != nil {
			t.Fatal(err)
		}
		phase1[blk] = sel[0]
	}
	// Phase 2: treat the ε_1 ciphertexts as ε_2 plaintexts, select with v2.
	row := make([]*big.Int, omega)
	for i, c := range phase1 {
		row[i] = c.C
	}
	sel, err := k.MatSelect([][]*big.Int{row}, v2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.DecryptLayered(sel[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(answers[target]) != 0 {
		t.Fatalf("two-phase selection = %v, want %v", got, answers[target])
	}
}

func TestRerandomize(t *testing.T) {
	k := key(t)
	c, _ := k.EncryptInt64(nil, 55, 1)
	r, err := k.Rerandomize(nil, c)
	if err != nil {
		t.Fatal(err)
	}
	if r.C.Cmp(c.C) == 0 {
		t.Fatal("Rerandomize returned an identical ciphertext")
	}
	got, _ := k.Decrypt(r)
	if got.Int64() != 55 {
		t.Fatalf("rerandomized plaintext = %v, want 55", got)
	}
}

func TestDecryptRejectsBadInput(t *testing.T) {
	k := key(t)
	if _, err := k.Decrypt(&Ciphertext{C: new(big.Int), S: 1}); err == nil {
		t.Error("zero ciphertext accepted")
	}
	if _, err := k.Decrypt(&Ciphertext{C: k.NS(2), S: 1}); err == nil {
		t.Error("out-of-range ciphertext accepted")
	}
	if _, err := k.Decrypt(&Ciphertext{C: one, S: 0}); err == nil {
		t.Error("degree 0 accepted")
	}
}

func TestDecryptLayeredErrors(t *testing.T) {
	k := key(t)
	c, _ := k.EncryptInt64(nil, 1, 1)
	if _, err := k.DecryptLayered(c, 0); err == nil {
		t.Error("layers=0 accepted")
	}
	if _, err := k.DecryptLayered(c, 2); err == nil {
		t.Error("peeling 2 layers off an s=1 ciphertext accepted")
	}
}

func TestCiphertextBytesRoundTrip(t *testing.T) {
	k := key(t)
	for s := 1; s <= 2; s++ {
		c, _ := k.EncryptInt64(nil, 424242, s)
		b := c.Bytes(&k.PublicKey)
		if len(b) != k.CiphertextByteLen(s) {
			t.Fatalf("serialized length = %d, want %d", len(b), k.CiphertextByteLen(s))
		}
		back := CiphertextFromBytes(b, s)
		if back.C.Cmp(c.C) != 0 || back.S != s {
			t.Fatal("Bytes roundtrip mismatch")
		}
		got, _ := k.Decrypt(back)
		if got.Int64() != 424242 {
			t.Fatalf("decrypt after roundtrip = %v", got)
		}
	}
}

func TestCiphertextLenScalesWithDegree(t *testing.T) {
	k := key(t)
	l1, l2 := k.CiphertextByteLen(1), k.CiphertextByteLen(2)
	// The paper: a ciphertext of ε_2 is about twice the length of ε_1's.
	if l2 != l1/2*3 {
		t.Fatalf("L(ε_2) = %d, want 1.5× of L(ε_1) container (=%d)", l2, l1/2*3)
	}
}

func TestNewPublicKeyEncryptsForPrivate(t *testing.T) {
	k := key(t)
	pub := NewPublicKey(k.N)
	c, err := pub.Encrypt(nil, big.NewInt(808), 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 808 {
		t.Fatalf("decrypt = %v, want 808", got)
	}
}

func TestOnePlusNExpMatchesBigExp(t *testing.T) {
	k := key(t)
	for s := 1; s <= 3; s++ {
		mod := k.NS(s + 1)
		base := new(big.Int).Add(one, k.N)
		for i := 0; i < 10; i++ {
			m, err := rand.Int(rand.Reader, k.NS(s))
			if err != nil {
				t.Fatal(err)
			}
			want := new(big.Int).Exp(base, m, mod)
			got := k.onePlusNExp(m, s)
			if got.Cmp(want) != 0 {
				t.Fatalf("s=%d onePlusNExp(%v) mismatch", s, m)
			}
		}
	}
}

func TestRandomPlaintextRoundTrip(t *testing.T) {
	k := key(t)
	for s := 1; s <= 2; s++ {
		for i := 0; i < 20; i++ {
			m, err := rand.Int(rand.Reader, k.NS(s))
			if err != nil {
				t.Fatal(err)
			}
			c, err := k.Encrypt(nil, m, s)
			if err != nil {
				t.Fatal(err)
			}
			got, err := k.Decrypt(c)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(m) != 0 {
				t.Fatalf("s=%d random roundtrip failed", s)
			}
		}
	}
}

func TestDistinctKeysDontInteroperate(t *testing.T) {
	k1 := key(t)
	k2, err := GenerateKey(nil, testKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := k1.EncryptInt64(nil, 7, 1)
	got, err := k2.Decrypt(c)
	if err == nil && got.Int64() == 7 {
		t.Fatal("ciphertext decrypted correctly under the wrong key")
	}
}

func TestBytesDeterministicLength(t *testing.T) {
	k := key(t)
	// A tiny ciphertext value must still serialize to full length.
	c := &Ciphertext{C: big.NewInt(1), S: 1}
	b := c.Bytes(&k.PublicKey)
	if len(b) != k.CiphertextByteLen(1) {
		t.Fatalf("len = %d, want %d", len(b), k.CiphertextByteLen(1))
	}
	if !bytes.Equal(b[len(b)-1:], []byte{1}) {
		t.Fatal("padding layout unexpected")
	}
}
