package paillier

import (
	"math/big"
	"testing"
)

func TestPrecomputerEncrypt(t *testing.T) {
	k := key(t)
	for s := 1; s <= 2; s++ {
		pre, err := k.NewPrecomputer(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := pre.Fill(nil, 5); err != nil {
			t.Fatal(err)
		}
		if pre.Size() != 5 {
			t.Fatalf("pool size %d", pre.Size())
		}
		for i := 0; i < 5; i++ {
			m := big.NewInt(int64(1000 + i))
			ct, fromPool, err := pre.Encrypt(nil, m)
			if err != nil {
				t.Fatal(err)
			}
			if !fromPool {
				t.Fatalf("encryption %d did not use the pool", i)
			}
			got, err := k.Decrypt(ct)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(m) != 0 {
				t.Fatalf("s=%d: pooled roundtrip = %v, want %v", s, got, m)
			}
		}
		if pre.Size() != 0 {
			t.Fatalf("pool not drained: %d", pre.Size())
		}
		// Fallback path: empty pool still encrypts correctly.
		ct, fromPool, err := pre.Encrypt(nil, big.NewInt(7))
		if err != nil {
			t.Fatal(err)
		}
		if fromPool {
			t.Fatal("empty pool claimed a pooled factor")
		}
		if got, _ := k.Decrypt(ct); got.Int64() != 7 {
			t.Fatalf("fallback roundtrip = %v", got)
		}
	}
}

func TestPrecomputerValidation(t *testing.T) {
	k := key(t)
	if _, err := k.NewPrecomputer(0); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := k.NewPrecomputer(MaxS + 1); err == nil {
		t.Error("degree > MaxS accepted")
	}
	pre, _ := k.NewPrecomputer(1)
	if _, _, err := pre.Encrypt(nil, big.NewInt(-1)); err == nil {
		t.Error("negative plaintext accepted")
	}
	if _, _, err := pre.Encrypt(nil, k.NS(1)); err == nil {
		t.Error("oversized plaintext accepted")
	}
}

func TestPrecomputedCiphertextsAreDistinct(t *testing.T) {
	k := key(t)
	pre, _ := k.NewPrecomputer(1)
	if err := pre.Fill(nil, 2); err != nil {
		t.Fatal(err)
	}
	m := big.NewInt(5)
	c1, _, _ := pre.Encrypt(nil, m)
	c2, _, _ := pre.Encrypt(nil, m)
	if c1.C.Cmp(c2.C) == 0 {
		t.Fatal("two pooled encryptions of the same plaintext were identical")
	}
}

// The online part of a pooled encryption must be much cheaper than a full
// encryption (that is the point of the pool).
func BenchmarkEncryptPooled512(b *testing.B) {
	k := benchKey(b, 512)
	pre, err := k.NewPrecomputer(1)
	if err != nil {
		b.Fatal(err)
	}
	if err := pre.Fill(nil, b.N); err != nil {
		b.Fatal(err)
	}
	m := big.NewInt(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pre.Encrypt(nil, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncryptOnline512(b *testing.B) {
	k := benchKey(b, 512)
	m := big.NewInt(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Encrypt(nil, m, 1); err != nil {
			b.Fatal(err)
		}
	}
}
