package paillier

import (
	"bytes"
	"context"
	"math/big"
	"testing"

	"ppgnn/internal/obs"
)

func cacheCounters() (hit, miss int64) {
	snap := obs.Default().Snapshot()
	return snap.Counter("paillier_enc_cache_total", obs.L("result", "hit")),
		snap.Counter("paillier_enc_cache_total", obs.L("result", "miss"))
}

// TestEncCacheRoundTripAndHitMiss runs the same plaintext batch through
// the cache twice: the first pass misses and populates, the second hits
// throughout, and both passes decrypt correctly.
func TestEncCacheRoundTripAndHitMiss(t *testing.T) {
	k := key(t)
	ec := NewEncCache(64)
	ms := []*big.Int{big.NewInt(0), big.NewInt(1), big.NewInt(0), big.NewInt(12345)}
	for s := 1; s <= 2; s++ {
		hit0, miss0 := cacheCounters()
		first, pooled, err := ec.EncryptBatch(context.Background(), nil, nil, &k.PublicKey, nil, ms, s)
		if err != nil {
			t.Fatal(err)
		}
		if pooled != 0 {
			t.Fatalf("s=%d: pooled = %d with no precomputer", s, pooled)
		}
		hit1, miss1 := cacheCounters()
		if hit1 != hit0 || miss1-miss0 != int64(len(ms)) {
			t.Fatalf("s=%d first pass: hits +%d misses +%d, want +0/+%d", s, hit1-hit0, miss1-miss0, len(ms))
		}
		second, _, err := ec.EncryptBatch(context.Background(), nil, nil, &k.PublicKey, nil, ms, s)
		if err != nil {
			t.Fatal(err)
		}
		hit2, miss2 := cacheCounters()
		if hit2-hit1 != int64(len(ms)) || miss2 != miss1 {
			t.Fatalf("s=%d second pass: hits +%d misses +%d, want +%d/+0", s, hit2-hit1, miss2-miss1, len(ms))
		}
		for i := range ms {
			for pass, cts := range [][]*Ciphertext{first, second} {
				got, err := k.Decrypt(cts[i])
				if err != nil {
					t.Fatal(err)
				}
				if got.Cmp(ms[i]) != 0 {
					t.Fatalf("s=%d pass %d slot %d: roundtrip %v != %v", s, pass, i, got, ms[i])
				}
			}
		}
	}
}

// TestEncCacheHitsNeverByteIdentical is the rerandomize-on-hit privacy
// pin (ISSUE 10 satellite): two hits for the same plaintext — and a hit
// against the miss that populated it — must never emit byte-identical
// ciphertexts, while all decryptions match. Equality of plaintexts can
// never become equality of ciphertexts on the wire.
func TestEncCacheHitsNeverByteIdentical(t *testing.T) {
	k := key(t)
	ec := NewEncCache(16)
	m := []*big.Int{big.NewInt(7)}
	var emitted [][]byte
	for round := 0; round < 4; round++ {
		cts, _, err := ec.EncryptBatch(context.Background(), nil, nil, &k.PublicKey, nil, m, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.Decrypt(cts[0])
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != 7 {
			t.Fatalf("round %d: roundtrip %v", round, got)
		}
		emitted = append(emitted, cts[0].C.Bytes())
	}
	// A batch with a repeated plaintext must differ within the batch too.
	cts, _, err := ec.EncryptBatch(context.Background(), nil, nil, &k.PublicKey, nil,
		[]*big.Int{big.NewInt(7), big.NewInt(7)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	emitted = append(emitted, cts[0].C.Bytes(), cts[1].C.Bytes())
	for i := 0; i < len(emitted); i++ {
		for j := i + 1; j < len(emitted); j++ {
			if bytes.Equal(emitted[i], emitted[j]) {
				t.Fatalf("emissions %d and %d of the same plaintext are byte-identical", i, j)
			}
		}
	}
}

// TestEncCachePooledFactors drives the cache through a Precomputer and
// checks the pooled/online split and that hits still consume pool
// factors (fresh randomness per emission, even on a hit).
func TestEncCachePooledFactors(t *testing.T) {
	k := key(t)
	pre, err := k.NewPrecomputer(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := pre.Fill(nil, 3); err != nil {
		t.Fatal(err)
	}
	ec := NewEncCache(16)
	ms := []*big.Int{big.NewInt(5), big.NewInt(5)}
	_, pooled, err := ec.EncryptBatch(context.Background(), nil, nil, &k.PublicKey, pre, ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pooled != 2 {
		t.Fatalf("pooled = %d, want 2", pooled)
	}
	// Second pass: hits, but still one factor per emission (2 requested,
	// 1 left in the pool).
	_, pooled, err = ec.EncryptBatch(context.Background(), nil, nil, &k.PublicKey, pre, ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pooled != 1 {
		t.Fatalf("second-pass pooled = %d, want 1", pooled)
	}
	if pre.Size() != 0 {
		t.Fatalf("pool size %d, want 0", pre.Size())
	}
	// Mismatched precomputer is rejected.
	pre2, _ := k.NewPrecomputer(2)
	if _, _, err := ec.EncryptBatch(context.Background(), nil, nil, &k.PublicKey, pre2, ms, 1); err == nil {
		t.Fatal("mismatched precomputer degree accepted")
	}
}

// TestEncCacheKeyIsolationAndBound checks two keys never share entries
// (same plaintext, different keys must decrypt under their own keys)
// and the LRU bound holds.
func TestEncCacheKeyIsolationAndBound(t *testing.T) {
	k1 := key(t)
	k2, err := GenerateKey(nil, testKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	ec := NewEncCache(3)
	m := []*big.Int{big.NewInt(9)}
	c1, _, err := ec.EncryptBatch(context.Background(), nil, nil, &k1.PublicKey, nil, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := ec.EncryptBatch(context.Background(), nil, nil, &k2.PublicKey, nil, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := k1.Decrypt(c1[0]); got.Int64() != 9 {
		t.Fatalf("k1 roundtrip %v", got)
	}
	if got, _ := k2.Decrypt(c2[0]); got.Int64() != 9 {
		t.Fatalf("k2 roundtrip %v", got)
	}
	// Same plaintext, same degree, different key: distinct entries.
	if ec.Len() != 2 {
		t.Fatalf("cache len = %d, want 2", ec.Len())
	}
	// Push past the bound; the cache stays bounded and correct.
	for i := 0; i < 10; i++ {
		ms := []*big.Int{big.NewInt(int64(100 + i))}
		cts, _, err := ec.EncryptBatch(context.Background(), nil, nil, &k1.PublicKey, nil, ms, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := k1.Decrypt(cts[0]); got.Cmp(ms[0]) != 0 {
			t.Fatalf("roundtrip %v != %v", got, ms[0])
		}
	}
	if ec.Len() > 3 {
		t.Fatalf("cache len = %d, want <= 3", ec.Len())
	}
}
