package paillier

import (
	"bytes"
	"context"
	"math/big"
	mrand "math/rand"
	"testing"
)

// Tests for the modmath kernel integration: NS/Ctx cache behavior, the
// kernel-on/kernel-off byte-equality contract on ⊙/⨂/combine, and the
// opt-in short-exponent randomness mode (Options.ShortRandBits).

// freshKey generates a key private to one test, so mode switches
// (SetOptions, SetKernel) never leak into the shared cached key.
func freshKey(t testing.TB) *PrivateKey {
	t.Helper()
	k, err := GenerateKey(nil, testKeyBits)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	return k
}

// TestNSLookupZeroAllocs pins the satellite contract that after first use,
// NS is one atomic load: no locks, no allocations.
func TestNSLookupZeroAllocs(t *testing.T) {
	k := key(t)
	for s := 0; s <= 3; s++ {
		k.NS(s) // warm
	}
	allocs := testing.AllocsPerRun(100, func() {
		for s := 0; s <= 3; s++ {
			k.NS(s)
		}
	})
	if allocs != 0 {
		t.Errorf("warm NS lookups allocate %v times per run, want 0", allocs)
	}
}

func TestNSMatchesDirectPower(t *testing.T) {
	k := key(t)
	if k.NS(0).Cmp(one) != 0 {
		t.Errorf("NS(0) = %v, want 1", k.NS(0))
	}
	for s := 1; s <= MaxS+1; s++ {
		want := new(big.Int).Exp(k.N, big.NewInt(int64(s)), nil)
		if k.NS(s).Cmp(want) != 0 {
			t.Errorf("NS(%d) != N^%d", s, s)
		}
		if k.Ctx(s).M != k.NS(s) {
			t.Errorf("Ctx(%d).M and NS(%d) are different objects", s, s)
		}
	}
}

func TestCtxPanicsOutOfRange(t *testing.T) {
	k := key(t)
	for _, s := range []int{-1, 0, MaxS + 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Ctx(%d) did not panic", s)
				}
			}()
			k.Ctx(s)
		}()
	}
}

func BenchmarkNSLookup(b *testing.B) {
	k := key(b)
	k.NS(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.NS(2)
	}
}

// withKernelOff runs f with the kernel fast paths disabled, restoring the
// previous setting afterwards.
func withKernelOff(t *testing.T, f func()) {
	t.Helper()
	prev := SetKernel(false)
	defer SetKernel(prev)
	f()
}

// TestDotProductKernelEquivalence pins the exactness contract end to end:
// ⊙ and ⨂ produce byte-identical ciphertexts with the kernel on and off,
// including negative and zero coefficients.
func TestDotProductKernelEquivalence(t *testing.T) {
	k := key(t)
	rng := mrand.New(mrand.NewSource(21))
	for s := 1; s <= 2; s++ {
		ns := k.NS(s)
		n := 12
		xs := make([]*big.Int, n)
		cs := make([]*Ciphertext, n)
		for i := range cs {
			m := new(big.Int).Rand(rng, ns)
			ct, err := k.Encrypt(nil, m, s)
			if err != nil {
				t.Fatal(err)
			}
			cs[i] = ct
			switch i % 4 {
			case 0:
				xs[i] = new(big.Int) // zero coefficient
			case 1:
				xs[i] = big.NewInt(-int64(rng.Intn(1000) + 1)) // negative
			default:
				xs[i] = new(big.Int).Rand(rng, ns)
			}
		}
		on, err := k.DotProduct(xs, cs)
		if err != nil {
			t.Fatal(err)
		}
		var off *Ciphertext
		withKernelOff(t, func() {
			off, err = k.DotProduct(xs, cs)
		})
		if err != nil {
			t.Fatal(err)
		}
		if on.C.Cmp(off.C) != 0 {
			t.Fatalf("s=%d: kernel and reference ⊙ differ", s)
		}

		// ⨂ over a few rows of the same shapes.
		rows := [][]*big.Int{xs, xs[:n], xs}
		vOn, err := k.MatSelect(rows, cs)
		if err != nil {
			t.Fatal(err)
		}
		var vOff []*Ciphertext
		withKernelOff(t, func() {
			vOff, err = k.MatSelect(rows, cs)
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range vOn {
			if vOn[i].C.Cmp(vOff[i].C) != 0 {
				t.Fatalf("s=%d row %d: kernel and reference ⨂ differ", s, i)
			}
		}
	}
}

// TestCombineKernelEquivalence drives threshold share combination — whose
// Lagrange exponents exercise the negative-coefficient inversion path —
// through both kernel settings at s=1 and s=2.
func TestCombineKernelEquivalence(t *testing.T) {
	tk, shares := thresholdKey(t)
	for s := 1; s <= 2; s++ {
		m := big.NewInt(987654)
		ct, err := tk.Encrypt(nil, m, s)
		if err != nil {
			t.Fatal(err)
		}
		var ds []*DecryptionShare
		for _, sh := range shares[:tk.T] {
			d, err := tk.PartialDecrypt(sh, ct)
			if err != nil {
				t.Fatal(err)
			}
			ds = append(ds, d)
		}
		on, err := tk.Combine(ds)
		if err != nil {
			t.Fatal(err)
		}
		var off *big.Int
		withKernelOff(t, func() {
			off, err = tk.Combine(ds)
		})
		if err != nil {
			t.Fatal(err)
		}
		if on.Cmp(off) != 0 {
			t.Fatalf("s=%d: kernel and reference combine differ", s)
		}
		if on.Cmp(m) != 0 {
			t.Fatalf("s=%d: combine = %v, want %v", s, on, m)
		}
	}
}

// TestExpLambdaCRTDegree2 checks the CRT fast path against a direct
// full-width exponentiation at s ≥ 2 (kernel contexts live under both).
func TestExpLambdaCRTDegree2(t *testing.T) {
	k := key(t)
	rng := mrand.New(mrand.NewSource(23))
	for s := 1; s <= 3; s++ {
		mod := k.NS(s + 1)
		for trial := 0; trial < 3; trial++ {
			c := new(big.Int).Rand(rng, mod)
			got := k.expLambdaCRT(c, s)
			want := new(big.Int).Exp(c, k.lambda, mod)
			if got.Cmp(want) != 0 {
				t.Fatalf("s=%d: expLambdaCRT != direct Exp", s)
			}
		}
	}
}

func TestSetOptionsValidation(t *testing.T) {
	k := freshKey(t)
	if err := k.SetOptions(Options{ShortRandBits: 8}); err == nil {
		t.Error("ShortRandBits=8 accepted")
	}
	if err := k.SetOptions(Options{ShortRandBits: k.N.BitLen()}); err == nil {
		t.Error("full-width ShortRandBits accepted")
	}
	if k.ShortRandBits() != 0 {
		t.Errorf("failed SetOptions left ShortRandBits=%d", k.ShortRandBits())
	}
	if err := k.SetOptions(Options{ShortRandBits: 64}); err != nil {
		t.Fatalf("SetOptions(64): %v", err)
	}
	if k.ShortRandBits() != 64 {
		t.Errorf("ShortRandBits() = %d, want 64", k.ShortRandBits())
	}
	if err := k.SetOptions(Options{}); err != nil {
		t.Fatalf("disabling: %v", err)
	}
	if k.ShortRandBits() != 0 {
		t.Errorf("ShortRandBits() = %d after disable, want 0", k.ShortRandBits())
	}
}

// TestShortRandRoundTrip: with short-exponent randomness on, every
// homomorphic identity still yields the exact plaintext — the mode changes
// the assumption, never the answer.
func TestShortRandRoundTrip(t *testing.T) {
	k := freshKey(t)
	if err := k.SetOptions(Options{ShortRandBits: 64}); err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(31))
	for s := 1; s <= 2; s++ {
		ns := k.NS(s)
		for _, m := range []*big.Int{
			new(big.Int),
			big.NewInt(424242),
			new(big.Int).Sub(ns, one),
		} {
			ct, err := k.Encrypt(rng, m, s)
			if err != nil {
				t.Fatal(err)
			}
			got, err := k.Decrypt(ct)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(m) != 0 {
				t.Fatalf("s=%d: short-rand roundtrip = %v, want %v", s, got, m)
			}
			// Homomorphic ops on short-rand ciphertexts.
			ct2, err := k.Rerandomize(rng, ct)
			if err != nil {
				t.Fatal(err)
			}
			got, err = k.Decrypt(ct2)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(m) != 0 {
				t.Fatalf("s=%d: short-rand rerandomize = %v, want %v", s, got, m)
			}
		}
	}
}

// TestShortRandBatchDeterminism: batch encryption in short-rand mode
// consumes a seeded reader exactly like the serial loop (DESIGN.md §10's
// determinism contract extends to the new randomness mode).
func TestShortRandBatchDeterminism(t *testing.T) {
	k := freshKey(t)
	if err := k.SetOptions(Options{ShortRandBits: 64}); err != nil {
		t.Fatal(err)
	}
	const n = 9
	rng := mrand.New(mrand.NewSource(5))
	ms := make([]*big.Int, n)
	for i := range ms {
		ms[i] = new(big.Int).Rand(rng, k.NS(1))
	}
	serial := make([]*Ciphertext, n)
	sRand := mrand.New(mrand.NewSource(6))
	for i := range ms {
		ct, err := k.Encrypt(sRand, ms[i], 1)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = ct
	}
	batch, err := k.EncryptBatch(context.Background(), batchPool(), mrand.New(mrand.NewSource(6)), ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !bytes.Equal(serial[i].Bytes(&k.PublicKey), batch[i].Bytes(&k.PublicKey)) {
			t.Fatalf("short-rand batch ciphertext %d differs from serial", i)
		}
	}
}

// TestShortRandPrecompute: the offline pool draws and applies short
// exponents when the mode is on, and pooled vs online ciphertexts both
// decrypt to the exact plaintext.
func TestShortRandPrecompute(t *testing.T) {
	k := freshKey(t)
	if err := k.SetOptions(Options{ShortRandBits: 64}); err != nil {
		t.Fatal(err)
	}
	pre, err := k.NewPrecomputer(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := pre.Fill(mrand.New(mrand.NewSource(9)), 3); err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(10))
	for i := 0; i < 5; i++ { // 3 pooled, then 2 online
		m := big.NewInt(int64(1000 + i))
		ct, fromPool, err := pre.Encrypt(rng, m)
		if err != nil {
			t.Fatal(err)
		}
		if wantPool := i < 3; fromPool != wantPool {
			t.Errorf("encryption %d fromPool=%v, want %v", i, fromPool, wantPool)
		}
		got, err := k.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(m) != 0 {
			t.Fatalf("pooled short-rand roundtrip %d = %v, want %v", i, got, m)
		}
	}
}
