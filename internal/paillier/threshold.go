package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"time"
)

// Threshold decryption, from Section 4.1 of the same Damgård–Jurik paper
// the protocol's ε_s scheme comes from. It removes the PPGNN protocol's
// residual trust point: in the base protocol the coordinator u_c alone
// holds the secret key and therefore sees the answer first; with a
// (t, w)-threshold key, decryption requires t of the w users to cooperate,
// so no single user — coordinator included — can decrypt alone. See
// examples/threshold.
//
// Construction (semi-honest setting, matching the paper's adversary
// model — the zero-knowledge correctness proofs of the original scheme are
// out of scope here):
//
//   - N = pq with safe primes p = 2p'+1, q = 2q'+1; m = p'q'.
//   - The shared secret is d ≡ 0 (mod m), d ≡ 1 (mod N^S), Shamir-shared
//     with a degree t−1 polynomial over Z_{N^S·m}.
//   - A share holder outputs c_i = c^{2Δ·s_i} mod N^{s+1} with Δ = w!.
//   - Any t shares combine as c' = Π c_i^{2·λ_i} with integral Lagrange
//     coefficients λ_i = Δ·Π_{j≠i} j/(j−i), giving c' = c^{4Δ²·d} =
//     (1+N)^{4Δ²·x}; the plaintext is log(c')·(4Δ²)^{-1} mod N^s.

// ThresholdKey is the public side of a (t, w)-threshold key.
type ThresholdKey struct {
	PublicKey
	W    int // total share holders
	T    int // shares required to decrypt
	SMax int // largest supported ciphertext degree

	delta *big.Int // w!
}

// KeyShare is one holder's secret share of the decryption exponent.
type KeyShare struct {
	Index int // 1-based holder index
	Value *big.Int
}

// DecryptionShare is one holder's contribution to decrypting a ciphertext.
type DecryptionShare struct {
	Index int
	S     int
	Value *big.Int
}

// GenerateThresholdKey creates a (t, w)-threshold key pair supporting
// ciphertext degrees up to sMax. bits is the modulus size; safe-prime
// generation makes this noticeably slower than GenerateKey (seconds at
// research sizes, minutes at 1024 bits in pure Go).
func GenerateThresholdKey(random io.Reader, bits, w, t, sMax int) (*ThresholdKey, []*KeyShare, error) {
	if bits < 32 {
		return nil, nil, fmt.Errorf("paillier: key size %d too small", bits)
	}
	if t < 1 || w < t {
		return nil, nil, fmt.Errorf("paillier: invalid threshold %d-of-%d", t, w)
	}
	if sMax < 1 || sMax > MaxS {
		return nil, nil, fmt.Errorf("paillier: sMax=%d out of range [1,%d]", sMax, MaxS)
	}
	if random == nil {
		random = rand.Reader
	}
	p, pPrime, err := safePrime(random, bits/2)
	if err != nil {
		return nil, nil, err
	}
	var q, qPrime *big.Int
	for {
		q, qPrime, err = safePrime(random, bits-bits/2)
		if err != nil {
			return nil, nil, err
		}
		if q.Cmp(p) != 0 {
			break
		}
	}
	n := new(big.Int).Mul(p, q)
	m := new(big.Int).Mul(pPrime, qPrime)

	tk := &ThresholdKey{
		PublicKey: PublicKey{N: n},
		W:         w, T: t, SMax: sMax,
		delta: factorial(w),
	}
	ns := tk.NS(sMax)

	// d ≡ 0 (mod m), d ≡ 1 (mod N^SMax), via CRT (gcd(m, N^SMax) = 1:
	// p', q' are primes larger than 2 and distinct from p, q).
	mInv := new(big.Int).ModInverse(m, ns)
	if mInv == nil {
		return nil, nil, errors.New("paillier: m not invertible mod N^s")
	}
	d := new(big.Int).Mul(m, mInv) // ≡ 0 mod m, ≡ 1 mod N^SMax
	mod := new(big.Int).Mul(ns, m) // share arithmetic modulus N^SMax·m

	// Shamir: f(X) = d + a_1·X + … + a_{t−1}·X^{t−1} over Z_{N^SMax·m}.
	coeffs := make([]*big.Int, t)
	coeffs[0] = d
	for i := 1; i < t; i++ {
		a, err := rand.Int(random, mod)
		if err != nil {
			return nil, nil, fmt.Errorf("paillier: sampling polynomial: %w", err)
		}
		coeffs[i] = a
	}
	shares := make([]*KeyShare, w)
	for i := 1; i <= w; i++ {
		x := big.NewInt(int64(i))
		val := new(big.Int)
		for j := t - 1; j >= 0; j-- {
			val.Mul(val, x)
			val.Add(val, coeffs[j])
			val.Mod(val, mod)
		}
		shares[i-1] = &KeyShare{Index: i, Value: val}
	}
	return tk, shares, nil
}

// safePrime returns p = 2p'+1 with both p and p' prime.
func safePrime(random io.Reader, bits int) (p, pPrime *big.Int, err error) {
	two := big.NewInt(2)
	for {
		pp, err := rand.Prime(random, bits-1)
		if err != nil {
			return nil, nil, fmt.Errorf("paillier: generating safe prime: %w", err)
		}
		cand := new(big.Int).Mul(pp, two)
		cand.Add(cand, one)
		if cand.BitLen() != bits {
			continue
		}
		if cand.ProbablyPrime(20) {
			return cand, pp, nil
		}
	}
}

func factorial(n int) *big.Int {
	f := big.NewInt(1)
	for i := 2; i <= n; i++ {
		f.Mul(f, big.NewInt(int64(i)))
	}
	return f
}

// PartialDecrypt produces holder share.Index's contribution c^{2Δ·s_i}.
func (tk *ThresholdKey) PartialDecrypt(share *KeyShare, c *Ciphertext) (*DecryptionShare, error) {
	if c.S < 1 || c.S > tk.SMax {
		return nil, fmt.Errorf("paillier: ciphertext degree %d outside [1,%d]", c.S, tk.SMax)
	}
	mod := tk.NS(c.S + 1)
	if c.C.Sign() <= 0 || c.C.Cmp(mod) >= 0 {
		return nil, errors.New("paillier: ciphertext out of range")
	}
	e := new(big.Int).Lsh(tk.delta, 1) // 2Δ
	e.Mul(e, share.Value)
	mPartialDec.Inc()
	return &DecryptionShare{
		Index: share.Index,
		S:     c.S,
		Value: tk.Ctx(c.S+1).Exp(c.C, e),
	}, nil
}

// Combine recovers the plaintext from any t decryption shares (extra
// shares are ignored; duplicates and unknown indices are rejected).
func (tk *ThresholdKey) Combine(shares []*DecryptionShare) (*big.Int, error) {
	defer observeDecrypt(mDecryptThres, time.Now())
	mCombine.Inc()
	if len(shares) < tk.T {
		return nil, fmt.Errorf("paillier: %d shares below threshold %d", len(shares), tk.T)
	}
	use := shares[:tk.T]
	s := use[0].S
	seen := map[int]bool{}
	for _, sh := range use {
		if sh.S != s {
			return nil, errors.New("paillier: mixed-degree decryption shares")
		}
		if sh.Index < 1 || sh.Index > tk.W {
			return nil, fmt.Errorf("paillier: share index %d outside [1,%d]", sh.Index, tk.W)
		}
		if seen[sh.Index] {
			return nil, fmt.Errorf("paillier: duplicate share index %d", sh.Index)
		}
		seen[sh.Index] = true
	}
	ctx := tk.Ctx(s + 1)
	mod := ctx.M
	// c' = Π c_i^{2λ_i}: negative coefficients invert the share first (the
	// group element, not the exponent — N^{s+1}'s order is private), then
	// all terms go through one interleaved multi-exponentiation.
	bases := make([]*big.Int, 0, len(use))
	exps := make([]*big.Int, 0, len(use))
	for _, sh := range use {
		lam, err := tk.lagrange(sh.Index, use)
		if err != nil {
			return nil, err
		}
		e := new(big.Int).Lsh(lam, 1) // 2λ
		base := sh.Value
		if e.Sign() < 0 {
			base = new(big.Int).ModInverse(sh.Value, mod)
			if base == nil {
				return nil, errors.New("paillier: share not invertible")
			}
			e.Neg(e)
		}
		bases = append(bases, base)
		exps = append(exps, e)
	}
	var (
		acc *big.Int
		err error
	)
	if kernelOn() {
		acc, err = ctx.MultiExp(bases, exps)
	} else {
		acc, err = ctx.MultiExpRef(bases, exps)
	}
	if err != nil {
		return nil, fmt.Errorf("paillier: combining shares: %w", err)
	}
	// acc = (1+N)^{4Δ²·x}; recover x.
	xScaled, err := tk.logOnePlusN(acc, s)
	if err != nil {
		return nil, err
	}
	ns := tk.NS(s)
	scale := new(big.Int).Mul(tk.delta, tk.delta)
	scale.Lsh(scale, 2) // 4Δ²
	scale.Mod(scale, ns)
	inv := new(big.Int).ModInverse(scale, ns)
	if inv == nil {
		return nil, errors.New("paillier: 4Δ² not invertible mod N^s")
	}
	xScaled.Mul(xScaled, inv)
	xScaled.Mod(xScaled, ns)
	return xScaled, nil
}

// lagrange returns λ_i = Δ·Π_{j∈S, j≠i} j/(i−j inverted) — the integral
// Lagrange coefficient at zero for the share subset.
func (tk *ThresholdKey) lagrange(i int, subset []*DecryptionShare) (*big.Int, error) {
	num := new(big.Int).Set(tk.delta)
	den := big.NewInt(1)
	for _, sh := range subset {
		if sh.Index == i {
			continue
		}
		num.Mul(num, big.NewInt(int64(sh.Index)))
		den.Mul(den, big.NewInt(int64(sh.Index-i)))
	}
	q, r := new(big.Int).QuoRem(num, den, new(big.Int))
	if r.Sign() != 0 {
		return nil, errors.New("paillier: non-integral Lagrange coefficient")
	}
	return q, nil
}
