package integration

import (
	"context"
	"net"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/dataset"
	"ppgnn/internal/faultnet"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/load"
	"ppgnn/internal/obs"
	"ppgnn/internal/transport"
)

// TestLoadSoakFaultedConformance is the whole-stack soak: an LSP behind
// real TCP with a connection cap (so the server itself sheds under
// burst), open-loop Poisson traffic from a fleet of client groups, and
// seeded faultnet schedules cutting connections mid-run — while every
// answer that does come back is checked point-for-point against the
// plaintext kGNN engine. This is the cross-module scenario none of
// internal/load, transport, or core can test alone: crypto + partition +
// wire framing + retry + shedding under sustained concurrency.
func TestLoadSoakFaultedConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained-traffic soak")
	}
	lsp := core.NewLSP(dataset.Synthetic(77, 1500), geo.UnitRect)
	srv := transport.NewServer(lsp)
	srv.MaxConns = 6 // tight: a traffic burst makes the server shed for real
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	fleet, err := load.NewFleet(load.FleetConfig{
		Addr:      addr.String(),
		Groups:    6,
		GroupSize: 3,
		KeyBits:   192,
		Seed:      4,
		PoolSize:  2,
		RetryBase: 2 * time.Millisecond,
		RetryMax:  50 * time.Millisecond,
		Oracle: func(q []geo.Point, k int) []gnn.Result {
			return lsp.Search(q, k, gnn.Sum)
		},
		DialFunc: func(group int) func(string) (net.Conn, error) {
			switch group % 3 {
			case 0: // flaky dials and a slow, chunked link
				return faultnet.Dialer(
					faultnet.Faults{FailDial: true},
					faultnet.Faults{Seed: int64(group), Latency: time.Millisecond, MaxChunk: 256},
				)
			case 1: // first connection dies mid-answer
				return faultnet.Dialer(faultnet.Faults{Seed: int64(group), ReadResetAfter: 48})
			default:
				return nil
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	reg := obs.NewRegistry()
	d, err := load.NewDriver(load.Config{
		Rate:          45,
		Arrival:       load.Poisson,
		Warmup:        300 * time.Millisecond,
		Measure:       2 * time.Second,
		Drain:         20 * time.Second,
		Seed:          6,
		OracleChecked: true,
		Obs:           reg,
	}, fleet)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if got := rep.Mismatches(); got != 0 {
		t.Fatalf("%d answers disagreed with the plaintext oracle under faults+shedding", got)
	}
	if rep.Abandoned != 0 {
		t.Fatalf("%d queries abandoned", rep.Abandoned)
	}
	m := rep.Stage("measure")
	if m.OK == 0 {
		t.Fatalf("nothing succeeded: %v", m.Outcomes)
	}
	// The taxonomy must carry the whole story: everything that arrived
	// either completed with a classified outcome or was dropped at the cap.
	var classified int64
	for _, n := range m.Outcomes {
		classified += n
	}
	if classified != m.Done || m.Done+m.Dropped != m.Arrivals {
		t.Fatalf("taxonomy leak: arrivals=%d dropped=%d done=%d classified=%d",
			m.Arrivals, m.Dropped, m.Done, classified)
	}
	// Errors are tolerated (we injected them) but bounded.
	if err := (load.SLO{MaxErrorRate: 0.3, MaxAbandoned: 0}).Check(rep); err != nil {
		t.Fatalf("soak exceeded even the relaxed SLO: %v", err)
	}
	// The harness's registry view agrees with the report.
	snap := reg.Snapshot()
	if got := snap.Counter("load_sessions_total", obs.L("stage", "measure"), obs.L("outcome", "ok")); got != m.OK {
		t.Fatalf("registry ok=%d, report ok=%d", got, m.OK)
	}
}
