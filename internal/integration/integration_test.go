// Package integration holds cross-module scenario tests: full protocol
// stacks (crypto + partition + sanitation + wire + TCP) exercised together,
// including failure injection that no single package can test alone.
package integration

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/cost"
	"ppgnn/internal/dataset"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/roadnet"
	"ppgnn/internal/rtree"
	"ppgnn/internal/transport"
	"ppgnn/internal/wire"
)

func testParams(n int, variant core.Variant) core.Params {
	p := core.DefaultParams(n)
	p.KeyBits = 256
	p.D = 5
	p.Delta = 10
	if n == 1 {
		p.Delta = p.D
	}
	p.K = 4
	p.Variant = variant
	return p
}

func randomLocations(rng *rand.Rand, n int) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return out
}

// The kitchen sink: a road-network LSP served over TCP, queried by a
// caching group with precomputed randomness, answers rerandomized — every
// extension at once, still returning the engine's exact ranking.
func TestFullStackCombined(t *testing.T) {
	pois := dataset.Synthetic(11, 4000)
	lsp := core.NewLSP(pois, geo.UnitRect)
	lsp.Rerandomize = true
	city := roadnet.NewGrid(3, 12, 12, 0.3)
	engine := roadnet.NewSearcher(city, pois, gnn.Sum)
	lsp.Search = func(query []geo.Point, k int, _ gnn.Aggregate) []gnn.Result {
		return engine.Search(query, k)
	}
	srv := transport.NewServer(lsp)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rng := rand.New(rand.NewSource(5))
	p := testParams(3, core.VariantOPT)
	p.NoSanitize = true
	locs := randomLocations(rng, 3)
	g, err := core.NewGroup(p, locs, rng)
	if err != nil {
		t.Fatal(err)
	}
	g.CacheSets = true
	if _, err := g.Precompute(64); err != nil {
		t.Fatal(err)
	}

	cli, err := transport.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var meter cost.Meter
	cli.Meter = &meter

	want := engine.Search(locs, p.K)
	for round := 0; round < 3; round++ {
		res, err := g.Run(cli, &meter)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(res.Points) != len(want) {
			t.Fatalf("round %d: %d POIs, want %d", round, len(res.Points), len(want))
		}
		for i := range want {
			if res.Points[i].Dist(want[i].Item.P) > 1e-6 {
				t.Fatalf("round %d rank %d: answer does not match the road-network engine", round, i)
			}
		}
	}
	if meter.Snapshot().TotalBytes() == 0 {
		t.Fatal("no wire traffic recorded")
	}
}

// Threshold group over TCP: joint decryption with the LSP fully remote.
func TestThresholdOverTCP(t *testing.T) {
	lsp := core.NewLSP(dataset.Synthetic(13, 2000), geo.UnitRect)
	srv := transport.NewServer(lsp)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := testParams(3, core.VariantPPGNN)
	p.KeyBits = 192
	p.NoSanitize = true
	rng := rand.New(rand.NewSource(7))
	locs := randomLocations(rng, 3)
	tg, err := core.NewThresholdGroup(p, locs, rng, 2)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := transport.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := tg.Run(cli, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != p.K {
		t.Fatalf("threshold-over-TCP returned %d POIs", len(res.Points))
	}
}

// Failure injection: a server that dies mid-session must surface an error
// to the client, not a hang or a bogus answer.
func TestServerDiesMidQuery(t *testing.T) {
	lsp := core.NewLSP(dataset.Synthetic(17, 500), geo.UnitRect)
	srv := transport.NewServer(lsp)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	p := testParams(2, core.VariantPPGNN)
	p.NoSanitize = true
	g, err := core.NewGroup(p, randomLocations(rng, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := transport.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// First query succeeds.
	if _, err := g.Run(cli, nil); err != nil {
		t.Fatalf("first query: %v", err)
	}
	// Kill the server; the next query must error out promptly.
	srv.Close()
	done := make(chan error, 1)
	go func() {
		_, err := g.Run(cli, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("query against a dead server succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query against a dead server hung")
	}
}

// Failure injection: garbage frames must not crash the server, and honest
// clients on other connections keep working.
func TestServerSurvivesGarbage(t *testing.T) {
	lsp := core.NewLSP(dataset.Synthetic(19, 500), geo.UnitRect)
	srv := transport.NewServer(lsp)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Hostile connection 1: raw garbage bytes.
	hostile, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	hostile.Write([]byte("GET / HTTP/1.1\r\n\r\n\x00\x00\xff\xff"))
	hostile.Close()

	// Hostile connection 2: a well-framed but undecodable query.
	hostile2, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	wire.WriteFrame(hostile2, core.FrameQuery, []byte{0xde, 0xad, 0xbe, 0xef})
	hostile2.Close()

	// Hostile connection 3: claims a huge frame then hangs up.
	hostile3, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	hostile3.Write([]byte{1, 0x00, 0xff, 0xff, 0xff})
	hostile3.Close()

	// An honest client still gets served.
	rng := rand.New(rand.NewSource(11))
	p := testParams(2, core.VariantPPGNN)
	p.NoSanitize = true
	g, err := core.NewGroup(p, randomLocations(rng, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := transport.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := g.Run(cli, nil); err != nil {
		t.Fatalf("honest client failed after hostile traffic: %v", err)
	}
}

// Many concurrent groups with different parameters against one server.
func TestConcurrentMixedWorkload(t *testing.T) {
	lsp := core.NewLSP(dataset.Synthetic(23, 3000), geo.UnitRect)
	lsp.Workers = 2
	srv := transport.NewServer(lsp)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	variants := []core.Variant{core.VariantPPGNN, core.VariantOPT, core.VariantNaive}
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + i)))
			n := 1 + i%3
			p := testParams(n, variants[i%3])
			p.NoSanitize = i%2 == 0
			g, err := core.NewGroup(p, randomLocations(rng, n), rng)
			if err != nil {
				errs <- err
				return
			}
			cli, err := transport.Dial(addr.String())
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			for q := 0; q < 2; q++ {
				if _, err := g.Run(cli, nil); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// A database mutated between queries serves consistent fresh answers over
// the full remote stack.
func TestDynamicDatabaseOverTCP(t *testing.T) {
	lsp := core.NewLSP(dataset.Synthetic(29, 800), geo.UnitRect)
	srv := transport.NewServer(lsp)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rng := rand.New(rand.NewSource(13))
	p := testParams(1, core.VariantPPGNN)
	p.K = 1
	loc := geo.Point{X: 0.77, Y: 0.31}
	g, err := core.NewGroup(p, []geo.Point{loc}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := transport.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Insert a POI at the query location; it must be served remotely.
	lsp.Insert(rtree.Item{ID: 999999, P: loc})
	res, err := g.Run(cli, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].Dist(loc) > 1e-6 {
		t.Fatalf("inserted POI not served: top-1 %v", res.Points[0])
	}
	lsp.Delete(rtree.Item{ID: 999999, P: loc})
	res2, err := g.Run(cli, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Points[0].Dist(loc) < 1e-9 {
		t.Fatal("deleted POI still served")
	}
}
