package partition

import (
	"testing"

	"ppgnn/internal/geo"
)

// TestLayoutMatchesDirectConstruction pins the memoized layout path
// against the direct per-candidate construction (CandidateAt +
// candidate) for several shapes: same candidates, same order, and a
// second call for the same shape hits the memo.
func TestLayoutMatchesDirectConstruction(t *testing.T) {
	shapes := []struct{ n, d, delta int }{
		{1, 4, 4},
		{3, 5, 10},
		{4, 6, 24},
		{5, 10, 40},
	}
	for _, sh := range shapes {
		p, err := Solve(sh.n, sh.d, sh.delta)
		if err != nil {
			t.Fatalf("Solve(%d,%d,%d): %v", sh.n, sh.d, sh.delta, err)
		}
		locSets := make([][]geo.Point, p.N)
		for u := range locSets {
			locSets[u] = make([]geo.Point, p.D)
			for i := range locSets[u] {
				locSets[u][i] = geo.Point{X: float64(u*100 + i), Y: float64(i)}
			}
		}
		got, err := p.Candidates(locSets)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != p.DeltaPrime {
			t.Fatalf("shape %+v: %d candidates, want δ'=%d", sh, len(got), p.DeltaPrime)
		}
		for ct := 0; ct < p.DeltaPrime; ct++ {
			seg, x := p.CandidateAt(ct)
			want := p.candidate(locSets, seg, x)
			for u := range want {
				if got[ct][u] != want[u] {
					t.Fatalf("shape %+v candidate %d user %d: layout %v != direct %v",
						sh, ct, u, got[ct][u], want[u])
				}
			}
		}
		// Second call must reuse the memoized table (same backing array).
		first := p.layout()
		second := p.layout()
		if &first[0] != &second[0] {
			t.Fatalf("shape %+v: layout rebuilt instead of memoized", sh)
		}
	}
}

// TestLayoutCacheBounded drives more shapes than maxLayouts through the
// memo and checks the cache stays bounded while results stay correct.
func TestLayoutCacheBounded(t *testing.T) {
	for d := 2; d < 2+maxLayouts+5; d++ {
		p, err := Solve(2, d, d)
		if err != nil {
			t.Fatalf("Solve(2,%d,%d): %v", d, d, err)
		}
		pos := p.layout()
		if len(pos) != p.DeltaPrime {
			t.Fatalf("d=%d: layout rows %d, want %d", d, len(pos), p.DeltaPrime)
		}
	}
	layoutMu.Lock()
	n := len(layoutCache)
	layoutMu.Unlock()
	if n > maxLayouts {
		t.Fatalf("layout cache holds %d entries, bound is %d", n, maxLayouts)
	}
}
