// Package partition implements the candidate-query machinery of Section
// 4.1: solving the nonlinear integer program (Eqn 7–10) for the partition
// parameters (n̄, d̄), computing the query index of the real query in the
// candidate list (Eqn 12), and enumerating the candidate queries by
// cartesian products of subgroup columns per segment.
//
// The paper proposes solving the MINLP offline with a generic solver
// (Bonmin); the instance sizes here (d ≤ ~50, n ≤ ~32, δ ≤ ~200) are tiny,
// so this package solves it exactly with a dynamic program over segment
// sizes, memoizing results per (n, d, δ) as the paper's precomputation
// prescribes.
package partition

import (
	"fmt"
	"math"
	"sync"

	"ppgnn/internal/geo"
)

// Params are the partition parameters {n̄, d̄} shared by users and LSP,
// together with the derived candidate-query count δ'.
type Params struct {
	N     int // group size
	D     int // location-set size (Privacy I parameter)
	Delta int // requested minimum candidate count (Privacy II parameter)

	Alpha      int   // number of subgroups α = len(NBar)
	NBar       []int // subgroup sizes, Σ = N
	DBar       []int // segment sizes, Σ = D
	DeltaPrime int   // Σ_i DBar[i]^Alpha ≥ Delta, minimized
}

// satCap bounds intermediate powers so the DP cannot overflow int64.
const satCap = math.MaxInt64 / 4

// powSat returns base^exp saturated at satCap.
func powSat(base, exp int) int64 {
	r := int64(1)
	for i := 0; i < exp; i++ {
		r *= int64(base)
		if r >= satCap || r < 0 {
			return satCap
		}
	}
	return r
}

type solveKey struct{ n, d, delta int }

var (
	cacheMu sync.Mutex
	cache   = map[solveKey]Params{}
)

// Solve finds partition parameters minimizing δ' = Σ_i d̄_i^α subject to
// δ' ≥ δ, Σ_i d̄_i = d, 1 ≤ α ≤ n. Results are memoized, mirroring the
// paper's offline precomputation for frequently used (n, d, δ).
//
// It returns an error when the instance is infeasible, i.e. δ > d^n, in
// which case the users must specify a larger d (Section 4.1).
func Solve(n, d, delta int) (Params, error) {
	if n < 1 || d < 1 || delta < 1 {
		return Params{}, fmt.Errorf("partition: invalid parameters n=%d d=%d δ=%d", n, d, delta)
	}
	key := solveKey{n, d, delta}
	cacheMu.Lock()
	if p, ok := cache[key]; ok {
		cacheMu.Unlock()
		return p, nil
	}
	cacheMu.Unlock()

	if powSat(d, n) < int64(delta) {
		return Params{}, fmt.Errorf("partition: infeasible: δ=%d > d^n=%d^%d; increase d", delta, d, n)
	}

	best := Params{DeltaPrime: -1}
	for alpha := 1; alpha <= n; alpha++ {
		dbar, total, ok := bestSegments(d, delta, alpha)
		if !ok {
			continue
		}
		if best.DeltaPrime == -1 || total < int64(best.DeltaPrime) {
			best = Params{
				N: n, D: d, Delta: delta,
				Alpha:      alpha,
				NBar:       balanced(n, alpha),
				DBar:       dbar,
				DeltaPrime: int(total),
			}
		}
	}
	if best.DeltaPrime == -1 {
		return Params{}, fmt.Errorf("partition: no feasible partition for n=%d d=%d δ=%d", n, d, delta)
	}
	cacheMu.Lock()
	cache[key] = best
	cacheMu.Unlock()
	return best, nil
}

// bestSegments finds, for a fixed α, the multiset of segment sizes summing
// to d that minimizes Σ d̄_i^α subject to Σ d̄_i^α ≥ δ. The DP state is
// (remaining budget of d, remaining δ to reach, maximum next part size) —
// parts are generated in non-increasing order to avoid counting permuted
// partitions twice.
func bestSegments(d, delta, alpha int) ([]int, int64, bool) {
	type state struct{ rem, need, maxPart int }
	memo := map[state]int64{}
	const inf = int64(math.MaxInt64)

	var solve func(rem, need, maxPart int) int64
	solve = func(rem, need, maxPart int) int64 {
		if rem == 0 {
			if need <= 0 {
				return 0
			}
			return inf
		}
		if maxPart > rem {
			maxPart = rem
		}
		if maxPart == 0 {
			return inf
		}
		st := state{rem, need, maxPart}
		if v, ok := memo[st]; ok {
			return v
		}
		bestV := inf
		for t := maxPart; t >= 1; t-- {
			cost := powSat(t, alpha)
			nextNeed := need - int(min64(cost, int64(need)))
			sub := solve(rem-t, nextNeed, t)
			if sub == inf {
				continue
			}
			if v := cost + sub; v < bestV {
				bestV = v
			}
		}
		memo[st] = bestV
		return bestV
	}

	total := solve(d, delta, d)
	if total == inf || total >= satCap {
		return nil, 0, false
	}
	// Reconstruct one optimal partition.
	var parts []int
	rem, need, maxPart := d, delta, d
	for rem > 0 {
		if maxPart > rem {
			maxPart = rem
		}
		found := false
		for t := maxPart; t >= 1; t-- {
			cost := powSat(t, alpha)
			nextNeed := need - int(min64(cost, int64(need)))
			sub := solve(rem-t, nextNeed, t)
			if sub != inf && cost+sub == solve(rem, need, maxPart) {
				parts = append(parts, t)
				rem -= t
				need = nextNeed
				maxPart = t
				found = true
				break
			}
		}
		if !found {
			return nil, 0, false
		}
	}
	return parts, total, true
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// balanced splits n into parts of near-equal size (the subgroup sizes are
// irrelevant to δ', Eqn 7, so any partition works).
func balanced(n, parts int) []int {
	out := make([]int, parts)
	base, extra := n/parts, n%parts
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out
}

// Validate checks internal consistency (used on LSP receipt of parameters
// from an untrusted coordinator).
func (p Params) Validate() error {
	if p.Alpha != len(p.NBar) {
		return fmt.Errorf("partition: α=%d but %d subgroup sizes", p.Alpha, len(p.NBar))
	}
	sumN := 0
	for _, v := range p.NBar {
		if v < 1 {
			return fmt.Errorf("partition: non-positive subgroup size %d", v)
		}
		sumN += v
	}
	if sumN != p.N {
		return fmt.Errorf("partition: subgroup sizes sum to %d, want n=%d", sumN, p.N)
	}
	sumD, total := 0, int64(0)
	for _, v := range p.DBar {
		if v < 1 {
			return fmt.Errorf("partition: non-positive segment size %d", v)
		}
		sumD += v
		total += powSat(v, p.Alpha)
	}
	if sumD != p.D {
		return fmt.Errorf("partition: segment sizes sum to %d, want d=%d", sumD, p.D)
	}
	if total != int64(p.DeltaPrime) {
		return fmt.Errorf("partition: δ'=%d but segments give %d", p.DeltaPrime, total)
	}
	if p.DeltaPrime < p.Delta {
		return fmt.Errorf("partition: δ'=%d < δ=%d", p.DeltaPrime, p.Delta)
	}
	return nil
}

// SegmentOffset returns the absolute position (0-based) of the first
// location of segment seg (0-based).
func (p Params) SegmentOffset(seg int) int {
	off := 0
	for i := 0; i < seg; i++ {
		off += p.DBar[i]
	}
	return off
}

// SegmentDist returns the probability distribution over segments of Eqn
// (11): P(seg=i) = d̄_i / d, which makes every absolute position equally
// likely and yields the 1/d guarantee of Privacy I (Theorem 4.3).
func (p Params) SegmentDist() []float64 {
	dist := make([]float64, len(p.DBar))
	for i, v := range p.DBar {
		dist[i] = float64(v) / float64(p.D)
	}
	return dist
}

// SubgroupOfUser returns the subgroup index (0-based) of user i (0-based):
// the first n̄_1 users form subgroup 1, the next n̄_2 subgroup 2, and so on.
func (p Params) SubgroupOfUser(i int) int {
	for j, size := range p.NBar {
		if i < size {
			return j
		}
		i -= size
	}
	panic(fmt.Sprintf("partition: user index out of range"))
}

// QueryIndex computes the 0-based position of the real query in the
// candidate query list (Eqn 12, minus the paper's trailing +1): seg is the
// chosen segment (0-based) and x[j] the relative position (0-based) chosen
// for subgroup j within that segment.
func (p Params) QueryIndex(seg int, x []int) int {
	if len(x) != p.Alpha {
		panic("partition: relative position vector length != α")
	}
	idx := 0
	for i := 0; i < seg; i++ {
		idx += int(powSat(p.DBar[i], p.Alpha))
	}
	stride := 1
	strides := make([]int, p.Alpha)
	for j := p.Alpha - 1; j >= 0; j-- {
		strides[j] = stride
		stride *= p.DBar[seg]
	}
	for j, xj := range x {
		if xj < 0 || xj >= p.DBar[seg] {
			panic("partition: relative position out of segment range")
		}
		idx += xj * strides[j]
	}
	return idx
}

// CandidateAt inverts QueryIndex: given the 0-based candidate index t it
// returns the segment and per-subgroup relative positions identifying the
// candidate query.
func (p Params) CandidateAt(t int) (seg int, x []int) {
	if t < 0 || t >= p.DeltaPrime {
		panic("partition: candidate index out of range")
	}
	for i, di := range p.DBar {
		block := int(powSat(di, p.Alpha))
		if t < block {
			x = make([]int, p.Alpha)
			for j := p.Alpha - 1; j >= 0; j-- {
				x[j] = t % di
				t /= di
			}
			return i, x
		}
		t -= block
	}
	panic("partition: unreachable")
}

// The candidate layout — for each candidate index t, the absolute
// location-set position every user reads — depends only on the
// partition shape (δ', n̄, d̄), never on the location sets themselves.
// Server traffic repeats a handful of shapes (every group of the same
// size and privacy parameters solves to the same Params), so the layout
// is memoized per shape (DESIGN.md §15): repeated queries skip the
// per-candidate div/mod decomposition and subgroup walk entirely.
// The table is bounded; eviction is least-recently-used.
type layoutEntry struct {
	pos [][]int32 // pos[t][u]: user u's absolute position in candidate t
	gen uint64
}

const maxLayouts = 32

var (
	layoutMu    sync.Mutex
	layoutGen   uint64
	layoutCache = map[string]*layoutEntry{}
)

// layoutKey identifies the shape a layout depends on. DeltaPrime is
// included even though a consistent Params derives it from (α, d̄):
// Params arrive from untrusted coordinators, and an inconsistent
// DeltaPrime must not poison the entry an honest shape maps to.
func (p Params) layoutKey() string {
	return fmt.Sprintf("%d|%v|%v", p.DeltaPrime, p.NBar, p.DBar)
}

// layout returns the memoized per-candidate position table for p's
// shape, building it on first use.
func (p Params) layout() [][]int32 {
	key := p.layoutKey()
	layoutMu.Lock()
	if e, ok := layoutCache[key]; ok {
		layoutGen++
		e.gen = layoutGen
		layoutMu.Unlock()
		return e.pos
	}
	layoutMu.Unlock()

	// Built outside the lock: a racing query for the same shape may
	// duplicate the build, but never blocks behind it.
	pos := make([][]int32, p.DeltaPrime)
	for t := range pos {
		seg, x := p.CandidateAt(t)
		off := p.SegmentOffset(seg)
		row := make([]int32, p.N)
		user := 0
		for j, size := range p.NBar {
			ap := int32(off + x[j])
			for u := 0; u < size; u++ {
				row[user] = ap
				user++
			}
		}
		pos[t] = row
	}

	layoutMu.Lock()
	if e, ok := layoutCache[key]; ok {
		layoutGen++
		e.gen = layoutGen
		layoutMu.Unlock()
		return e.pos
	}
	layoutGen++
	layoutCache[key] = &layoutEntry{pos: pos, gen: layoutGen}
	for len(layoutCache) > maxLayouts {
		var oldK string
		var old *layoutEntry
		for k, e := range layoutCache {
			if old == nil || e.gen < old.gen {
				old, oldK = e, k
			}
		}
		delete(layoutCache, oldK)
	}
	layoutMu.Unlock()
	return pos
}

// Candidates materializes the full candidate query list from the users'
// location sets (Section 4.1): for each segment the cartesian product over
// subgroups of the positions in that segment, listed in lexicographic
// order of (segment, x_1, …, x_α). locSets[i] is user i's location set of
// length d. Each returned candidate is a query of n locations in user order.
// The candidate ordering is exactly CandidateAt's; the shape's memoized
// layout only skips recomputing it.
func (p Params) Candidates(locSets [][]geo.Point) ([][]geo.Point, error) {
	if len(locSets) != p.N {
		return nil, fmt.Errorf("partition: %d location sets, want n=%d", len(locSets), p.N)
	}
	for i, ls := range locSets {
		if len(ls) != p.D {
			return nil, fmt.Errorf("partition: location set %d has %d entries, want d=%d", i, len(ls), p.D)
		}
	}
	out := make([][]geo.Point, p.DeltaPrime)
	for t, row := range p.layout() {
		q := make([]geo.Point, p.N)
		for u, ap := range row {
			q[u] = locSets[u][ap]
		}
		out[t] = q
	}
	return out, nil
}

// candidate builds a single candidate query: every user in subgroup j takes
// the location at absolute position SegmentOffset(seg)+x[j].
func (p Params) candidate(locSets [][]geo.Point, seg int, x []int) []geo.Point {
	q := make([]geo.Point, p.N)
	off := p.SegmentOffset(seg)
	user := 0
	for j, size := range p.NBar {
		pos := off + x[j]
		for u := 0; u < size; u++ {
			q[user] = locSets[user][pos]
			user++
		}
	}
	return q
}
