package partition

import (
	"math/rand"
	"reflect"
	"testing"

	"ppgnn/internal/geo"
)

// bruteForceOptimal enumerates every α and every partition of d and returns
// the minimal feasible δ'.
func bruteForceOptimal(n, d, delta int) (int64, bool) {
	best := int64(-1)
	var rec func(rem, maxPart, alpha int, acc int64)
	for alpha := 1; alpha <= n; alpha++ {
		rec = func(rem, maxPart, alpha int, acc int64) {
			if rem == 0 {
				if acc >= int64(delta) && (best == -1 || acc < best) {
					best = acc
				}
				return
			}
			if maxPart > rem {
				maxPart = rem
			}
			for t := 1; t <= maxPart; t++ {
				rec(rem-t, t, alpha, acc+powSat(t, alpha))
			}
		}
		rec(d, d, alpha, 0)
	}
	return best, best != -1
}

func TestSolveMatchesPaperExample(t *testing.T) {
	// Figure 3: n=4, d=4, δ=8 → n̄=(2,2), d̄=(2,2), δ'=8.
	p, err := Solve(4, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.DeltaPrime != 8 {
		t.Fatalf("δ' = %d, want 8", p.DeltaPrime)
	}
	if p.Alpha != 2 {
		t.Fatalf("α = %d, want 2", p.Alpha)
	}
	if !reflect.DeepEqual(p.DBar, []int{2, 2}) {
		t.Fatalf("d̄ = %v, want [2 2]", p.DBar)
	}
	if !reflect.DeepEqual(p.NBar, []int{2, 2}) {
		t.Fatalf("n̄ = %v, want [2 2]", p.NBar)
	}
}

func TestSolveSingleUser(t *testing.T) {
	// n=1 ⇒ δ=d and the minimum is β=d segments of size 1 (δ'=d), or any
	// partition summing to d — all give Σ d̄_i = d for α=1.
	p, err := Solve(1, 25, 25)
	if err != nil {
		t.Fatal(err)
	}
	if p.DeltaPrime != 25 || p.Alpha != 1 {
		t.Fatalf("n=1: δ'=%d α=%d, want 25, 1", p.DeltaPrime, p.Alpha)
	}
}

func TestSolveOptimalAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(6)
		d := 2 + rng.Intn(9) // ≤ 10 keeps brute force fast
		maxDelta := powSat(d, n)
		if maxDelta > 500 {
			maxDelta = 500
		}
		delta := 1 + rng.Intn(int(maxDelta))
		want, feasible := bruteForceOptimal(n, d, delta)
		p, err := Solve(n, d, delta)
		if !feasible {
			if err == nil {
				t.Fatalf("n=%d d=%d δ=%d: expected infeasible", n, d, delta)
			}
			continue
		}
		if err != nil {
			t.Fatalf("n=%d d=%d δ=%d: %v (brute force says feasible=%d)", n, d, delta, err, want)
		}
		if int64(p.DeltaPrime) != want {
			t.Fatalf("n=%d d=%d δ=%d: δ'=%d, brute force optimal %d", n, d, delta, p.DeltaPrime, want)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("n=%d d=%d δ=%d: invalid params: %v", n, d, delta, err)
		}
	}
}

func TestSolveInfeasible(t *testing.T) {
	if _, err := Solve(2, 3, 10); err == nil { // d^n = 9 < 10
		t.Fatal("expected infeasibility error")
	}
	if _, err := Solve(0, 5, 5); err == nil {
		t.Fatal("expected parameter error for n=0")
	}
}

func TestSolveDefaults(t *testing.T) {
	// The paper's default group setting: n=8, d=25, δ=100. The paper reports
	// δ' ≈ δ on average; require exact tightness bounds here.
	p, err := Solve(8, 25, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p.DeltaPrime < 100 {
		t.Fatalf("δ' = %d < δ", p.DeltaPrime)
	}
	if p.DeltaPrime > 110 {
		t.Fatalf("δ' = %d far above δ=100; solver not minimizing", p.DeltaPrime)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// The paper reports δ'−δ ≈ 1 on average over its tested grid. At very small
// d (e.g. d=5) the integer program genuinely cannot get δ' close to δ (the
// optimum is confirmed by TestSolveOptimalAgainstBruteForce), so check the
// tightness claim at the defaults d ∈ {25, 50} where it holds.
func TestSolveTightness(t *testing.T) {
	totalGap, count := 0, 0
	for _, n := range []int{2, 4, 8, 16, 32} {
		for _, d := range []int{25, 50} {
			for _, delta := range []int{50, 100, 150, 200} {
				if powSat(d, n) < int64(delta) {
					continue // δ > d^n: the paper requires a larger d here
				}
				p, err := Solve(n, d, delta)
				if err != nil {
					t.Fatalf("n=%d d=%d δ=%d: %v", n, d, delta, err)
				}
				gap := p.DeltaPrime - delta
				if gap < 0 {
					t.Fatalf("δ' < δ for n=%d d=%d δ=%d", n, d, delta)
				}
				totalGap += gap
				count++
			}
		}
	}
	if avg := float64(totalGap) / float64(count); avg > 3 {
		t.Fatalf("average δ'−δ = %v, want ≈1 per the paper", avg)
	}
}

func TestSolveMemoized(t *testing.T) {
	p1, err := Solve(8, 25, 100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Solve(8, 25, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("memoized result differs")
	}
}

func TestQueryIndexPaperExample(t *testing.T) {
	// Example 4.2: seg=2, x=(2,1) (1-based) → QI = 7 (1-based) = 6 (0-based).
	p := Params{N: 4, D: 4, Delta: 8, Alpha: 2, NBar: []int{2, 2}, DBar: []int{2, 2}, DeltaPrime: 8}
	if got := p.QueryIndex(1, []int{1, 0}); got != 6 {
		t.Fatalf("QueryIndex = %d, want 6 (paper's position 7, 1-based)", got)
	}
}

func TestQueryIndexCandidateAtInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(6)
		d := 2 + rng.Intn(10)
		delta := 1 + rng.Intn(int(min64(powSat(d, n), 300)))
		p, err := Solve(n, d, delta)
		if err != nil {
			continue
		}
		for t0 := 0; t0 < p.DeltaPrime; t0++ {
			seg, x := p.CandidateAt(t0)
			if got := p.QueryIndex(seg, x); got != t0 {
				t.Fatalf("params %+v: QueryIndex(CandidateAt(%d)) = %d", p, t0, got)
			}
		}
	}
}

func TestCandidateAtPanicsOutOfRange(t *testing.T) {
	p, _ := Solve(2, 4, 8)
	for _, idx := range []int{-1, p.DeltaPrime} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CandidateAt(%d) did not panic", idx)
				}
			}()
			p.CandidateAt(idx)
		}()
	}
}

func TestSegmentDistSumsToOne(t *testing.T) {
	p, err := Solve(8, 25, 100)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, pr := range p.SegmentDist() {
		if pr <= 0 {
			t.Fatal("non-positive segment probability")
		}
		sum += pr
	}
	if sum < 0.999999 || sum > 1.000001 {
		t.Fatalf("segment distribution sums to %v", sum)
	}
}

func TestSubgroupOfUser(t *testing.T) {
	p := Params{N: 5, D: 4, Alpha: 2, NBar: []int{3, 2}, DBar: []int{2, 2}, DeltaPrime: 8, Delta: 8}
	want := []int{0, 0, 0, 1, 1}
	for i, w := range want {
		if got := p.SubgroupOfUser(i); got != w {
			t.Fatalf("SubgroupOfUser(%d) = %d, want %d", i, got, w)
		}
	}
}

// TestCandidatesFigure3 reproduces Figure 3 exactly: 4 users, d=4, two
// segments and two subgroups; verify the 8 candidates, and that candidate 7
// (1-based) is the real query when seg=2, x=(2,1).
func TestCandidatesFigure3(t *testing.T) {
	p := Params{N: 4, D: 4, Delta: 8, Alpha: 2, NBar: []int{2, 2}, DBar: []int{2, 2}, DeltaPrime: 8}
	// Location sets: user i's j-th location encoded as (i+1, j+1)/10.
	locSets := make([][]geo.Point, 4)
	for i := range locSets {
		locSets[i] = make([]geo.Point, 4)
		for j := range locSets[i] {
			locSets[i][j] = geo.Point{X: float64(i+1) / 10, Y: float64(j+1) / 10}
		}
	}
	cands, err := p.Candidates(locSets)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 8 {
		t.Fatalf("got %d candidates, want 8", len(cands))
	}
	// Candidate C7 (paper, 1-based) = index 6: segment 2, subgroup1 at
	// position 2 of the segment (absolute position 4), subgroup2 at position
	// 1 (absolute position 3).
	c7 := cands[6]
	want := []geo.Point{
		{X: 0.1, Y: 0.4}, {X: 0.2, Y: 0.4}, // subgroup 1 (users 1,2) at absolute pos 4
		{X: 0.3, Y: 0.3}, {X: 0.4, Y: 0.3}, // subgroup 2 (users 3,4) at absolute pos 3
	}
	if !reflect.DeepEqual(c7, want) {
		t.Fatalf("C7 = %v, want %v", c7, want)
	}
	// First candidate: segment 1, both subgroups at position 1.
	c1 := cands[0]
	want1 := []geo.Point{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.1}, {X: 0.3, Y: 0.1}, {X: 0.4, Y: 0.1}}
	if !reflect.DeepEqual(c1, want1) {
		t.Fatalf("C1 = %v, want %v", c1, want1)
	}
	// All candidates must draw each user's location from that user's set.
	for ci, cand := range cands {
		if len(cand) != 4 {
			t.Fatalf("candidate %d has %d locations", ci, len(cand))
		}
		for u, loc := range cand {
			found := false
			for _, l := range locSets[u] {
				if l == loc {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("candidate %d user %d location %v not from their set", ci, u, loc)
			}
		}
	}
}

func TestCandidatesValidation(t *testing.T) {
	p, _ := Solve(3, 4, 10)
	if _, err := p.Candidates(make([][]geo.Point, 2)); err == nil {
		t.Error("wrong user count accepted")
	}
	bad := make([][]geo.Point, 3)
	for i := range bad {
		bad[i] = make([]geo.Point, 3) // wrong d
	}
	if _, err := p.Candidates(bad); err == nil {
		t.Error("wrong location-set length accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good, _ := Solve(4, 6, 12)
	cases := []func(*Params){
		func(p *Params) { p.NBar = p.NBar[:len(p.NBar)-1] },
		func(p *Params) { p.DBar = append([]int{}, p.DBar...); p.DBar[0]++ },
		func(p *Params) { p.DeltaPrime++ },
		func(p *Params) { p.Delta = p.DeltaPrime + 1 },
		func(p *Params) {
			p.NBar = append([]int{}, p.NBar...)
			p.NBar[0] = 0
			p.NBar[len(p.NBar)-1] += good.NBar[0]
		},
	}
	for i, corrupt := range cases {
		p := good
		corrupt(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: corruption not detected", i)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

// Every absolute position must be equally likely under the segment-then-
// position sampling scheme (the 1/d argument of Theorem 4.3).
func TestPositionUniformity(t *testing.T) {
	p, err := Solve(8, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	dist := p.SegmentDist()
	posProb := make([]float64, p.D)
	for seg, segProb := range dist {
		within := 1.0 / float64(p.DBar[seg])
		off := p.SegmentOffset(seg)
		for j := 0; j < p.DBar[seg]; j++ {
			posProb[off+j] += segProb * within
		}
	}
	for i, pr := range posProb {
		if pr < 1.0/float64(p.D)-1e-9 || pr > 1.0/float64(p.D)+1e-9 {
			t.Fatalf("position %d probability %v, want 1/d = %v", i, pr, 1.0/float64(p.D))
		}
	}
}
