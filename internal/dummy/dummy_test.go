package dummy

import (
	"math/rand"
	"testing"

	"ppgnn/internal/geo"
)

func testGenerators() map[string]Generator {
	return map[string]Generator{
		"uniform": Uniform{},
		"grid":    GridSpread{},
	}
}

func TestLocationSetBasics(t *testing.T) {
	real := geo.Point{X: 0.3, Y: 0.7}
	for name, g := range testGenerators() {
		rng := rand.New(rand.NewSource(1))
		for _, d := range []int{1, 2, 5, 25, 50} {
			for _, pos := range []int{0, d / 2, d - 1} {
				set := g.LocationSet(rng, real, d, pos, geo.UnitRect)
				if len(set) != d {
					t.Fatalf("%s: len = %d, want %d", name, len(set), d)
				}
				if set[pos] != real {
					t.Fatalf("%s: real location not at pos %d", name, pos)
				}
				for i, p := range set {
					if !geo.UnitRect.Contains(p) {
						t.Fatalf("%s: location %d = %v outside space", name, i, p)
					}
				}
			}
		}
	}
}

func TestLocationSetDeterministic(t *testing.T) {
	real := geo.Point{X: 0.5, Y: 0.5}
	for name, g := range testGenerators() {
		a := g.LocationSet(rand.New(rand.NewSource(9)), real, 20, 3, geo.UnitRect)
		b := g.LocationSet(rand.New(rand.NewSource(9)), real, 20, 3, geo.UnitRect)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: not deterministic at %d", name, i)
			}
		}
	}
}

func TestLocationSetPanics(t *testing.T) {
	real := geo.Point{X: 0.5, Y: 0.5}
	rng := rand.New(rand.NewSource(2))
	cases := []struct {
		name string
		fn   func()
	}{
		{"d=0", func() { Uniform{}.LocationSet(rng, real, 0, 0, geo.UnitRect) }},
		{"pos<0", func() { Uniform{}.LocationSet(rng, real, 5, -1, geo.UnitRect) }},
		{"pos>=d", func() { Uniform{}.LocationSet(rng, real, 5, 5, geo.UnitRect) }},
		{"outside", func() {
			Uniform{}.LocationSet(rng, geo.Point{X: 2, Y: 2}, 5, 0, geo.UnitRect)
		}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestUniformCoversSpace(t *testing.T) {
	// With many dummies, all four quadrants should be hit.
	rng := rand.New(rand.NewSource(3))
	set := Uniform{}.LocationSet(rng, geo.Point{X: 0.01, Y: 0.01}, 200, 0, geo.UnitRect)
	var q [4]int
	for _, p := range set {
		i := 0
		if p.X >= 0.5 {
			i++
		}
		if p.Y >= 0.5 {
			i += 2
		}
		q[i]++
	}
	for i, c := range q {
		if c == 0 {
			t.Fatalf("quadrant %d empty", i)
		}
	}
}

func TestGridSpreadDistinctCells(t *testing.T) {
	// d-1 dummies over a d-cell grid: no cell should receive two dummies
	// when d-1 <= number of cells.
	rng := rand.New(rand.NewSource(4))
	d := 25
	set := GridSpread{}.LocationSet(rng, geo.Point{X: 0.5, Y: 0.5}, d, 7, geo.UnitRect)
	cols := 5
	seen := map[int]int{}
	for i, p := range set {
		if i == 7 {
			continue
		}
		cx := int(p.X * float64(cols))
		cy := int(p.Y * float64(cols))
		if cx == cols {
			cx--
		}
		if cy == cols {
			cy--
		}
		seen[cy*cols+cx]++
	}
	for cell, c := range seen {
		if c > 1 {
			t.Fatalf("cell %d received %d dummies", cell, c)
		}
	}
}

func TestNonUnitSpace(t *testing.T) {
	space := geo.Rect{Min: geo.Point{X: -10, Y: 5}, Max: geo.Point{X: 10, Y: 25}}
	real := geo.Point{X: 0, Y: 15}
	for name, g := range testGenerators() {
		rng := rand.New(rand.NewSource(5))
		set := g.LocationSet(rng, real, 30, 4, space)
		for i, p := range set {
			if !space.Contains(p) {
				t.Fatalf("%s: location %d = %v outside %v", name, i, p, space)
			}
		}
	}
}
