// Package dummy generates the dummy locations that hide a user's real
// location inside their location set 𝕃_i (Privacy I). The paper cites the
// dummy-generation literature ([20] PAD, [22] k-anonymity dummies); two
// generators are provided:
//
//   - Uniform: d−1 locations drawn uniformly at random from the location
//     space, the baseline scheme the paper's protocol assumes.
//   - GridSpread: the space is tiled into ~d cells and one dummy is drawn
//     per cell, spreading the anonymity set across the whole space so that
//     dummies cannot be filtered by spatial clustering (after [22]).
//
// Both are deterministic given the caller's *rand.Rand, which keeps the
// protocol testable; production callers seed from crypto/rand.
package dummy

import (
	"fmt"
	"math"
	"math/rand"

	"ppgnn/internal/geo"
)

// Generator produces a location set of size d with the real location at
// index pos (0-based) and dummies elsewhere.
type Generator interface {
	// LocationSet returns a slice of length d whose pos-th element is real
	// and whose remaining elements are dummies inside space.
	LocationSet(rng *rand.Rand, real geo.Point, d, pos int, space geo.Rect) []geo.Point
}

func checkArgs(d, pos int, real geo.Point, space geo.Rect) {
	if d < 1 {
		panic(fmt.Sprintf("dummy: location set size d=%d < 1", d))
	}
	if pos < 0 || pos >= d {
		panic(fmt.Sprintf("dummy: real position %d outside [0,%d)", pos, d))
	}
	if !space.Valid() {
		panic("dummy: invalid location space")
	}
	if !space.Contains(real) {
		panic(fmt.Sprintf("dummy: real location %v outside space %v", real, space))
	}
}

// Uniform draws dummies uniformly from the location space.
type Uniform struct{}

// LocationSet implements Generator.
func (Uniform) LocationSet(rng *rand.Rand, real geo.Point, d, pos int, space geo.Rect) []geo.Point {
	checkArgs(d, pos, real, space)
	out := make([]geo.Point, d)
	for i := range out {
		if i == pos {
			out[i] = real
			continue
		}
		out[i] = geo.Point{
			X: space.Min.X + rng.Float64()*space.Width(),
			Y: space.Min.Y + rng.Float64()*space.Height(),
		}
	}
	return out
}

// GridSpread tiles the space into approximately d cells and places one
// dummy per cell (skipping the real location's cell), so the anonymity set
// covers the whole space.
type GridSpread struct{}

// LocationSet implements Generator.
func (GridSpread) LocationSet(rng *rand.Rand, real geo.Point, d, pos int, space geo.Rect) []geo.Point {
	checkArgs(d, pos, real, space)
	out := make([]geo.Point, d)
	out[pos] = real

	cols := int(math.Ceil(math.Sqrt(float64(d))))
	rows := (d + cols - 1) / cols
	cw := space.Width() / float64(cols)
	ch := space.Height() / float64(rows)

	// Assign the d−1 dummies to distinct cells in a shuffled order.
	cells := rng.Perm(cols * rows)
	ci := 0
	for i := 0; i < d; i++ {
		if i == pos {
			continue
		}
		cell := cells[ci%len(cells)]
		ci++
		cx, cy := cell%cols, cell/cols
		out[i] = geo.Point{
			X: space.Min.X + (float64(cx)+rng.Float64())*cw,
			Y: space.Min.Y + (float64(cy)+rng.Float64())*ch,
		}
		out[i] = space.Clamp(out[i])
	}
	return out
}
