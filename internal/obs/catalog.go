package obs

import "sort"

// This file is the single pre-registration site for every metric family
// in the stack (ISSUE 4 satellite). Before it existed, instruments came
// into being lazily at first use — transport.Pool bound its retry
// counters in init(), the paillier package in a var block — so a metrics
// snapshot taken before traffic showed an incomplete catalog, and nothing
// forced a new subsystem (like internal/parallel) to declare its metrics
// anywhere reviewable. MustPreRegister materializes the full catalog at
// zero: call it once per registry (obs.Serve does it for every served
// registry) and a snapshot enumerates every series the process can ever
// emit, all zeros until first use. TestCatalog keeps the table honest.
//
// Adding a metric anywhere in the stack means adding it here too; the
// catalog is deliberately data, not reflection, so the diff is the review.

// catalogEntry declares one metric family: its kind, name, histogram
// bounds (histograms only), and the label combinations to materialize
// (nil = one unlabeled instrument).
type catalogEntry struct {
	kind   metricKind
	name   string
	bounds []float64
	labels [][]Label
}

// each builds one label combination per value: {key=v1}, {key=v2}, ...
func each(key string, values ...string) [][]Label {
	out := make([][]Label, len(values))
	for i, v := range values {
		out[i] = []Label{L(key, v)}
	}
	return out
}

// allOf expands a label key's full closed enum, sorted for deterministic
// registration order.
func allOf(key string) [][]Label {
	vals := make([]string, 0, len(labelEnums[key]))
	for v := range labelEnums[key] {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return each(key, vals...)
}

// cross is the cartesian product of two label-combination sets.
func cross(a, b [][]Label) [][]Label {
	out := make([][]Label, 0, len(a)*len(b))
	for _, la := range a {
		for _, lb := range b {
			combo := make([]Label, 0, len(la)+len(lb))
			combo = append(combo, la...)
			combo = append(combo, lb...)
			out = append(out, combo)
		}
	}
	return out
}

// catalog lists every metric family the stack emits (DESIGN.md §9 and
// §10 document the semantics).
func catalog() []catalogEntry {
	phases := allOf("phase")
	outcomes := allOf("outcome")
	return []catalogEntry{
		// transport.Pool (client side).
		{kindCounter, "transport_dial_total", nil, each("outcome", "ok", "error")},
		{kindCounter, "transport_conn_reuse_total", nil, nil},
		{kindCounter, "transport_backoff_total", nil, nil},
		{kindGauge, "transport_inflight", nil, nil},
		{kindCounter, "transport_sessions_total", nil, outcomes},
		{kindCounter, "transport_retries_total", nil, allOf("cause")},

		// transport.Server.
		{kindCounter, "transport_server_shed_total", nil, nil},
		{kindCounter, "transport_server_panics_total", nil, nil},
		{kindCounter, "transport_server_sessions_total", nil, outcomes},
		{kindHistogram, "transport_server_frame_bytes", SizeBuckets, each("dir", "rx", "tx")},

		// group sessions.
		{kindCounter, "group_rounds_total", nil, allOf("kind")},
		{kindHistogram, "group_round_seconds", TimeBuckets, allOf("kind")},
		{kindCounter, "group_quorum_lost_total", nil, each("phase", "collect", "decrypt")},
		{kindCounter, "group_dropouts_total", nil, allOf("cause")},
		{kindCounter, "group_repartitions_total", nil, nil},
		{kindCounter, "group_equivocations_total", nil, nil},
		{kindCounter, "group_stragglers_total", nil, nil},

		// paillier crypto ops. enc/dec carry a degree label; the rest are
		// degree-free.
		{kindCounter, "paillier_ops_total", nil, cross(each("op", "enc", "dec"), allOf("degree"))},
		{kindCounter, "paillier_ops_total", nil, each("op",
			"add", "mul_plain", "dot", "mat_select", "rerandomize", "partial_dec", "combine")},
		{kindHistogram, "paillier_decrypt_seconds", TimeBuckets, allOf("path")},
		// The pool-depth gauge is per-Precomputer (degree × tenant slot),
		// not a process aggregate: the coordinator's s=1/s=2 pools and any
		// per-tenant refilled pools coexist, and one summed gauge is
		// meaningless under multi-pool traffic (ISSUE 10 satellite).
		{kindGauge, "paillier_precompute_pool_depth", nil, cross(allOf("degree"), allOf("tenant"))},
		{kindCounter, "paillier_precompute_filled_total", nil, nil},
		{kindCounter, "paillier_precompute_encrypt_total", nil, allOf("source")},

		// background Precomputer refiller + shared encrypted-constant
		// cache (DESIGN.md §15). The cache records hit/miss only; keys
		// and plaintexts never reach a metric.
		{kindCounter, "paillier_pool_refill_fills_total", nil, nil},
		{kindCounter, "paillier_pool_refill_factors_total", nil, nil},
		{kindGauge, "paillier_pool_refill_target", nil, nil},
		{kindCounter, "paillier_enc_cache_total", nil, each("result", "hit", "miss")},

		// protocol phase spans.
		{kindHistogram, phaseSecondsName, TimeBuckets, cross(phases, outcomes)},
		{kindCounter, phaseTotalName, nil, cross(phases, outcomes)},
		{kindCounter, phaseRetriesName, nil, phases},

		// per-query trace flight recorder (DESIGN.md §9): trace volume
		// and retention only — trace content lives in the recorder, not
		// the registry.
		{kindCounter, traceStartedName, nil, nil},
		{kindCounter, traceRemoteName, nil, nil},
		{kindCounter, traceCompletedName, nil, nil},
		{kindCounter, traceSlowName, nil, nil},
		{kindCounter, traceDumpsName, nil, nil},

		// parallel worker pool (DESIGN.md §10).
		{kindGauge, "parallel_pool_depth", nil, nil},
		{kindHistogram, "parallel_task_seconds", TimeBuckets, nil},
		{kindHistogram, "parallel_batch_size", CountBuckets, nil},

		// cross-session coalescer (DESIGN.md §15): flush trigger mix,
		// micro-batch shape (tasks and distinct sessions per flush), the
		// queue wait each submission paid, and submissions that ran
		// inline because the coalescer was closed.
		{kindCounter, "parallel_coalesce_batches_total", nil, allOf("trigger")},
		{kindCounter, "parallel_coalesce_inline_total", nil, nil},
		{kindHistogram, "parallel_coalesce_batch_tasks", CountBuckets, nil},
		{kindHistogram, "parallel_coalesce_batch_sessions", CountBuckets, nil},
		{kindHistogram, "parallel_coalesce_wait_seconds", TimeBuckets, nil},

		// modmath exponentiation kernel (DESIGN.md §11): table builds by
		// family, fixed-base table hit/miss, and the live width of every
		// multi-exponentiation.
		{kindCounter, "modmath_table_builds_total", nil, allOf("table")},
		{kindHistogram, "modmath_table_build_seconds", TimeBuckets, allOf("table")},
		{kindCounter, "modmath_fixed_base_total", nil, allOf("result")},
		{kindHistogram, "modmath_multiexp_width", CountBuckets, nil},

		// open-loop load harness (internal/load, DESIGN.md §12). Arrivals
		// only fire during warmup and measure; the drain stage merely
		// waits out in-flight sessions, so no series carries stage=drain.
		{kindCounter, "load_arrivals_total", nil, each("stage", "warmup", "measure")},
		{kindCounter, "load_dropped_total", nil, each("stage", "warmup", "measure")},
		{kindCounter, "load_sessions_total", nil, cross(each("stage", "warmup", "measure"), outcomes)},
		{kindHistogram, "load_query_seconds", TimeBuckets, each("stage", "warmup", "measure")},
		{kindHistogram, "load_sched_lag_seconds", TimeBuckets, nil},
		{kindCounter, "load_oracle_total", nil, allOf("verdict")},
		{kindGauge, "load_inflight", nil, nil},

		// service lifecycle layer (internal/svc, DESIGN.md §13). Tenants
		// appear as slots, never names (see the "tenant" enum); epochs are
		// gauges, not labels, so the series set stays fixed across any
		// number of reloads.
		{kindCounter, "svc_admissions_total", nil, cross(allOf("tenant"), allOf("admission"))},
		{kindGauge, "svc_tenant_inflight", nil, allOf("tenant")},
		{kindCounter, "svc_reloads_total", nil, each("result", "applied", "rejected")},
		{kindGauge, "svc_epoch", nil, nil},
		{kindGauge, "svc_epochs_live", nil, nil},
		{kindGauge, "svc_tenants", nil, nil},
		{kindGauge, "svc_ready", nil, nil},
		{kindCounter, "svc_watchdog_trips_total", nil, nil},
		{kindHistogram, "svc_session_cost_seconds", TimeBuckets, nil},

		// sharded POI index (internal/shard, DESIGN.md §14). Scan counts
		// are bucketed histograms (never raw POI coordinates); the grid
		// label is the closed on/off enum.
		{kindCounter, "shard_searches_total", nil, allOf("grid")},
		{kindHistogram, "shard_scanned", CountBuckets, nil},
		{kindHistogram, "shard_seed_scanned", CountBuckets, nil},
		{kindCounter, "shard_shards_pruned_total", nil, nil},
		{kindHistogram, "shard_build_seconds", TimeBuckets, nil},
		{kindGauge, "shard_count", nil, nil},
	}
}

// MustPreRegister materializes the full metric catalog on r at zero. It
// is idempotent (registration is get-or-create) and panics only on a
// catalog bug — a malformed name or an out-of-contract label — which the
// catalog test catches before any binary does.
func MustPreRegister(r *Registry) {
	for _, e := range catalog() {
		combos := e.labels
		if combos == nil {
			combos = [][]Label{nil}
		}
		for _, labels := range combos {
			switch e.kind {
			case kindCounter:
				r.Counter(e.name, labels...)
			case kindGauge:
				r.Gauge(e.name, labels...)
			case kindHistogram:
				r.Histogram(e.name, e.bounds, labels...)
			}
		}
	}
}
