package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// Per-query distributed tracing (DESIGN.md §9). A Trace stitches the
// phase spans of one query — session, collect, partition, query, lsp,
// decrypt — into a tree keyed by a crypto-random 64-bit trace id. The
// id is propagated on the wire by an optional FrameTrace frame
// (client → LSP and coordinator → members); an absent frame means the
// query is untraced, so the extension is wire-compatible the same way
// FrameTenant is.
//
// Traces obey the same redaction contract as metrics, but stricter:
// span phases and outcomes are clamped to the existing closed enums,
// and free-form attributes do not exist — SetAttr only accepts keys
// registered in traceAttrEnums (contract.go) and clamps their values,
// so a trace can never carry a location, a ciphertext, a tenant name,
// or any other per-query datum. Numeric facts (worker width, candidate
// count, retry-after hints) enter as closed bucket labels, never as raw
// numbers. privacy_test.go proves this on live trace JSON.

// TraceID is a crypto-random 64-bit trace identifier. Zero means
// "untraced". The id is random, not derived from any query content, so
// it links the spans of one query without identifying the query.
type TraceID uint64

// String formats the id the way it appears in trace JSON.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// TraceContext carries a trace across an API boundary: the wire id plus
// the span new child work should hang off. The zero value means
// untraced; every consumer treats it as "do nothing".
type TraceContext struct {
	ID   TraceID
	Span *TraceSpan
}

// Traced reports whether the context carries a live trace.
func (tc TraceContext) Traced() bool { return tc.ID != 0 }

// TraceSpan is one node in a trace tree: a phase, its wall time, a
// retry count, closed-enum attributes, and child spans. All methods are
// nil-safe (a nil span is an untraced no-op) and safe for concurrent
// use. After End the node is frozen: Child, SetAttr, and AddRetry
// become no-ops, pinning the misuse semantics tested in trace_test.go.
type TraceSpan struct {
	mu         sync.Mutex
	phase      string
	outcome    string
	traceStart time.Time
	start      time.Time
	dur        time.Duration
	retries    int64
	attrs      map[string]string
	children   []*TraceSpan
	ended      bool
	onEnd      func(*TraceSpan) // set on roots: hands the tree to the recorder
}

// Child starts a sub-span under s. The phase is clamped to the closed
// "phase" enum. Child on a nil or ended span returns nil, which is
// itself a safe no-op span.
func (s *TraceSpan) Child(phase string) *TraceSpan {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return nil
	}
	c := &TraceSpan{
		phase:      ClampLabel("phase", phase),
		traceStart: s.traceStart,
		start:      time.Now(),
	}
	s.children = append(s.children, c)
	return c
}

// SetAttr attaches a closed-enum attribute. The key must be registered
// in the trace attribute catalog (unregistered keys panic — they are
// code literals, so that is a bug); the value is clamped to the key's
// enum, so dynamic data degrades to "other" instead of leaking.
func (s *TraceSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	value = ClampTraceAttr(key, value)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// AddRetry notes one retried exchange inside the span.
func (s *TraceSpan) AddRetry() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.retries++
}

// End freezes the span with an outcome (clamped to the closed
// "outcome" enum). The first End wins; later calls are no-ops, also
// under concurrent callers. Ending a root span completes its trace and
// hands the tree to the flight recorder.
func (s *TraceSpan) End(outcome string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.outcome = ClampLabel("outcome", outcome)
	onEnd := s.onEnd
	s.mu.Unlock()
	if onEnd != nil {
		onEnd(s)
	}
}

// EndErr ends the span with Outcome(err).
func (s *TraceSpan) EndErr(err error) { s.End(Outcome(err)) }

// snap freezes the subtree rooted at s. Un-ended descendants are
// reported with outcome "other" and their duration so far — a trace
// completed while a stray child is still open must not block or lie.
func (s *TraceSpan) snap() *SpanSnap {
	s.mu.Lock()
	defer s.mu.Unlock()
	dur, outcome := s.dur, s.outcome
	if !s.ended {
		dur, outcome = time.Since(s.start), OtherValue
	}
	ss := &SpanSnap{
		Phase:         s.phase,
		Outcome:       outcome,
		OffsetSeconds: s.start.Sub(s.traceStart).Seconds(),
		Seconds:       dur.Seconds(),
		Retries:       s.retries,
	}
	if len(s.attrs) > 0 {
		ss.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			ss.Attrs[k] = v
		}
	}
	for _, c := range s.children {
		ss.Children = append(ss.Children, c.snap())
	}
	return ss
}

// Trace is one query's span tree plus its wire id. A nil Trace is a
// fully functional untraced no-op — callers sample once and then use
// the result unconditionally.
type Trace struct {
	id   TraceID
	root *TraceSpan
}

// ID returns the trace id (0 for a nil trace).
func (t *Trace) ID() TraceID {
	if t == nil {
		return 0
	}
	return t.id
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *TraceSpan {
	if t == nil {
		return nil
	}
	return t.root
}

// Context packages the trace for an API boundary crossing, rooted at
// span (Root when span is nil).
func (t *Trace) Context(span *TraceSpan) TraceContext {
	if t == nil {
		return TraceContext{}
	}
	if span == nil {
		span = t.root
	}
	return TraceContext{ID: t.id, Span: span}
}

// End completes the trace: it ends the root span, which hands the
// frozen tree to the recorder.
func (t *Trace) End(outcome string) {
	if t == nil {
		return
	}
	t.root.End(outcome)
}

// EndErr ends the trace with Outcome(err).
func (t *Trace) EndErr(err error) {
	if t == nil {
		return
	}
	t.root.EndErr(err)
}

// SpanSnap is one frozen span in trace JSON. Offsets are relative to
// the trace start — traces carry no absolute timestamps, so a retained
// trace cannot be correlated with an external clock to de-anonymize a
// query's arrival time beyond what the recorder's retention already
// implies.
type SpanSnap struct {
	Phase         string            `json:"phase"`
	Outcome       string            `json:"outcome"`
	OffsetSeconds float64           `json:"offset_seconds"`
	Seconds       float64           `json:"duration_seconds"`
	Retries       int64             `json:"retries,omitempty"`
	Attrs         map[string]string `json:"attrs,omitempty"`
	Children      []*SpanSnap       `json:"children,omitempty"`
}

// TraceSnap is one completed trace as served at /traces.
type TraceSnap struct {
	TraceID string    `json:"trace_id"`
	Remote  bool      `json:"remote,omitempty"` // id arrived via FrameTrace
	Root    *SpanSnap `json:"root"`
}

// newTraceID draws a non-zero crypto-random 64-bit id. Randomness
// failures surface as an untraceable id of 0 only if the platform RNG
// is broken beyond use, in which case crypto/rand panics first.
func newTraceID() TraceID {
	var b [8]byte
	for {
		if _, err := crand.Read(b[:]); err != nil {
			panic("obs: crypto/rand failed: " + err.Error())
		}
		if id := TraceID(binary.BigEndian.Uint64(b[:])); id != 0 {
			return id
		}
	}
}
