package obs

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSpanRecordsDurationAndOutcome(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("collect")
	time.Sleep(2 * time.Millisecond)
	sp.AddRetry()
	sp.AddRetry()
	d := sp.End("ok")
	if d < 2*time.Millisecond {
		t.Fatalf("span duration %v < slept 2ms", d)
	}

	s := r.Snapshot()
	h := s.Histogram(phaseSecondsName, L("phase", "collect"), L("outcome", "ok"))
	if h == nil || h.Count != 1 {
		t.Fatalf("phase histogram = %+v, want one sample", h)
	}
	if h.Sum < 0.002 {
		t.Fatalf("phase histogram sum %v < injected 2ms", h.Sum)
	}
	if got := s.Counter(phaseTotalName, L("phase", "collect"), L("outcome", "ok")); got != 1 {
		t.Fatalf("phase total = %d, want 1", got)
	}
	if got := s.Counter(phaseRetriesName, L("phase", "collect")); got != 2 {
		t.Fatalf("phase retries = %d, want 2", got)
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("query")
	sp.End("ok")
	sp.End("error") // must not double-record or relabel
	s := r.Snapshot()
	if got := s.Counter(phaseTotalName, L("phase", "query"), L("outcome", "ok")); got != 1 {
		t.Fatalf("ok total = %d, want 1", got)
	}
	if got := s.Counter(phaseTotalName, L("phase", "query"), L("outcome", "error")); got != 0 {
		t.Fatalf("error total = %d, want 0 after idempotent End", got)
	}
}

func TestSpanClampsOpenEndedStrings(t *testing.T) {
	r := NewRegistry()
	// A hostile/buggy caller passing query data as phase or outcome must
	// land on the closed enum, never mint a new series.
	sp := r.StartSpan("lat=48.85,lon=2.35")
	sp.End("session-8f3a9c21")
	s := r.Snapshot()
	if got := s.Counter(phaseTotalName, L("phase", OtherValue), L("outcome", OtherValue)); got != 1 {
		t.Fatalf("clamped total = %d, want 1", got)
	}
	for _, c := range s.Counters {
		for _, v := range c.Labels {
			if v == "lat=48.85,lon=2.35" || v == "session-8f3a9c21" {
				t.Fatalf("raw label value leaked into %+v", c)
			}
		}
	}
}

func TestOutcomeAndCauseMapping(t *testing.T) {
	if got := Outcome(nil); got != "ok" {
		t.Fatalf("Outcome(nil) = %q", got)
	}
	if got := Outcome(context.DeadlineExceeded); got != "timeout" {
		t.Fatalf("Outcome(deadline) = %q", got)
	}
	if got := Outcome(context.Canceled); got != "canceled" {
		t.Fatalf("Outcome(canceled) = %q", got)
	}
	if got := Outcome(errors.New("boom")); got != "error" {
		t.Fatalf("Outcome(err) = %q", got)
	}
	if got := Cause(context.Canceled); got != "canceled" {
		t.Fatalf("Cause(canceled) = %q", got)
	}
	if got := Cause(errors.New("boom")); got != OtherValue {
		t.Fatalf("Cause(opaque) = %q", got)
	}
	// Every mapping output must be inside the respective enum.
	for _, v := range []string{Outcome(nil), Outcome(context.Canceled), Outcome(errors.New("x"))} {
		if !AllowedValues("outcome", v) {
			t.Fatalf("Outcome produced out-of-enum value %q", v)
		}
	}
}
