// Package obs is the observability layer of the PPGNN stack: a
// concurrency-safe metrics registry (atomic counters, gauges, and
// fixed-bucket histograms), span-style phase tracing for the protocol
// phases of Algorithm 1, and an HTTP introspection endpoint serving JSON
// snapshots plus net/http/pprof. Standard library only, like the rest of
// the repository.
//
// Privacy contract (DESIGN.md §9): every metric name is a code literal
// validated against a closed charset, every label key must be
// pre-registered in contract.go, and every label value is clamped to that
// key's closed enum — an unknown value is replaced by "other" before it
// ever reaches the registry. Counters carry only aggregate integers. By
// construction no metric can transport a coordinate, a ciphertext, or a
// session id; TestPrivacyContract walks the live registry to prove it.
//
// The package-global Default registry is what the -metrics-addr endpoint
// of cmd/ppgnn and cmd/ppgnn-lsp serves. Instrumented structs
// (transport.Pool, transport.Server, group.Config) accept an optional
// *Registry and fall back to Default, so tests can observe an isolated
// registry while production processes aggregate everything in one place.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Keys are code literals registered in
// contract.go; values are clamped to the key's closed enum.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// nameRE is the closed charset for metric names: lowercase snake_case,
// nothing that could smuggle a payload.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]{0,119}$`)

// ValidName reports whether a metric name satisfies the naming contract.
// It is the single source of truth for the charset — the privacy test and
// the catalog test both call it instead of compiling their own regex.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic integer gauge (pool depths, in-flight sessions).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (either sign).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: bounds are the inclusive upper
// edges of each bucket, with an implicit +Inf overflow bucket. Counts,
// total count, and sum are all atomics, so Observe is lock-free.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last is +Inf overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// TimeBuckets is the default bucket layout for durations in seconds:
// 0.5ms up to 60s, roughly log-spaced. It covers everything from one
// in-process paillier op to a full soak-scale group session.
var TimeBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// SizeBuckets is the default bucket layout for byte sizes: 64B..16MiB.
var SizeBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20, 16 << 20,
}

// CountBuckets is the default bucket layout for item counts (batch sizes,
// candidate-set widths): 1..16384, log-spaced. δ' rarely exceeds a few
// hundred; the headroom covers experiment sweeps.
var CountBuckets = []float64{
	1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the p-quantile (0 < p < 1) from the bucket counts by
// linear interpolation inside the winning bucket. Samples in the overflow
// bucket report the largest finite bound — quantiles never extrapolate
// past the layout.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	cum := int64(0)
	for i := range h.buckets {
		bc := h.buckets[i].Load()
		if bc == 0 {
			cum += bc
			continue
		}
		if float64(cum+bc) >= rank {
			if i == len(h.bounds) { // overflow bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(bc)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum += bc
	}
	return h.bounds[len(h.bounds)-1]
}

// metricKind distinguishes the three metric families inside the registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered (name, labels) instrument.
type metric struct {
	name   string
	labels []Label // sorted by key
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds the registered metrics of one process (or one test). The
// zero value is NOT ready; use NewRegistry. All methods are safe for
// concurrent use; the instruments they return are lock-free.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
	rec     *Recorder // lazily created flight recorder (Recorder())
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-global registry: the one cmd/ppgnn-lsp and
// cmd/ppgnn serve on -metrics-addr and the fallback of every instrumented
// struct whose Obs field is nil.
func Default() *Registry { return defaultRegistry }

// key builds the canonical identity of a metric; labels must be sorted.
func key(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// normalize validates the metric name and clamps the labels to the
// privacy contract: unknown label keys panic (they are code literals — a
// bad one is a bug the contract test catches), out-of-enum label values
// are replaced by "other" so dynamic data can never leak into a label.
func normalize(name string, labels []Label) []Label {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: metric name %q violates the naming contract", name))
	}
	out := make([]Label, len(labels))
	for i, l := range labels {
		out[i] = Label{Key: l.Key, Value: ClampLabel(l.Key, l.Value)}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	for i := 1; i < len(out); i++ {
		if out[i].Key == out[i-1].Key {
			panic(fmt.Sprintf("obs: metric %q repeats label key %q", name, out[i].Key))
		}
	}
	return out
}

// lookup returns the metric for (name, labels), creating it with mk on
// first use. Kind mismatches panic: one name is one family.
func (r *Registry) lookup(name string, labels []Label, kind metricKind, mk func() *metric) *metric {
	labels = normalize(name, labels)
	k := key(name, labels)
	r.mu.RLock()
	m := r.metrics[k]
	r.mu.RUnlock()
	if m == nil {
		r.mu.Lock()
		m = r.metrics[k]
		if m == nil {
			m = mk()
			m.name, m.labels, m.kind = name, labels, kind
			r.metrics[k] = m
		}
		r.mu.Unlock()
	}
	if m.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
	}
	return m
}

// Counter returns (creating on first use) the counter for (name, labels).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, labels, kindCounter, func() *metric {
		return &metric{counter: &Counter{}}
	}).counter
}

// Gauge returns (creating on first use) the gauge for (name, labels).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, labels, kindGauge, func() *metric {
		return &metric{gauge: &Gauge{}}
	}).gauge
}

// Histogram returns (creating on first use) the histogram for (name,
// labels) with the given bucket bounds (nil = TimeBuckets). Bounds are
// fixed at first registration; later calls reuse the existing layout.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	return r.lookup(name, labels, kindHistogram, func() *metric {
		if len(bounds) == 0 {
			bounds = TimeBuckets
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		return &metric{hist: &Histogram{
			bounds:  bs,
			buckets: make([]atomic.Int64, len(bs)+1),
		}}
	}).hist
}

// Reset zeroes every registered metric, keeping the registrations (a
// snapshot after Reset shows the full catalog at zero). Tests and the
// bench-snapshot runner use it to measure deltas.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, m := range r.metrics {
		switch m.kind {
		case kindCounter:
			m.counter.v.Store(0)
		case kindGauge:
			m.gauge.v.Store(0)
		case kindHistogram:
			for i := range m.hist.buckets {
				m.hist.buckets[i].Store(0)
			}
			m.hist.count.Store(0)
			m.hist.sumBits.Store(0)
		}
	}
}

// BucketSnap is one histogram bucket in a snapshot: the count of samples
// at or below the upper edge (non-cumulative).
type BucketSnap struct {
	LE    float64 `json:"le"` // +Inf encoded as 0 with Overflow=true
	Count int64   `json:"count"`
}

// CounterSnap is a frozen counter.
type CounterSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// GaugeSnap is a frozen gauge.
type GaugeSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// HistSnap is a frozen histogram with precomputed quantiles, so a raw
// curl of the endpoint already answers "where is the p95".
type HistSnap struct {
	Name     string            `json:"name"`
	Labels   map[string]string `json:"labels,omitempty"`
	Count    int64             `json:"count"`
	Sum      float64           `json:"sum"`
	P50      float64           `json:"p50"`
	P95      float64           `json:"p95"`
	P99      float64           `json:"p99"`
	Buckets  []BucketSnap      `json:"buckets"`
	Overflow int64             `json:"overflow"` // samples above the last bound
}

// Snapshot is the frozen state of a registry, ready for JSON encoding.
// Entries are sorted by name then labels, so output is deterministic.
type Snapshot struct {
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges"`
	Histograms []HistSnap    `json:"histograms"`
}

// labelMap converts sorted labels for JSON.
func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot freezes the registry. Individual instruments are read with
// atomic loads; the snapshot is not a single consistent cut across
// metrics, which is fine for monitoring.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	ms := make([]*metric, 0, len(r.metrics))
	keys := make([]string, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ms = append(ms, r.metrics[k])
	}
	r.mu.RUnlock()

	snap := &Snapshot{}
	for _, m := range ms {
		lm := labelMap(m.labels)
		switch m.kind {
		case kindCounter:
			snap.Counters = append(snap.Counters, CounterSnap{m.name, lm, m.counter.Value()})
		case kindGauge:
			snap.Gauges = append(snap.Gauges, GaugeSnap{m.name, lm, m.gauge.Value()})
		case kindHistogram:
			h := m.hist
			hs := HistSnap{
				Name: m.name, Labels: lm,
				Count: h.Count(), Sum: h.Sum(),
				P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			}
			for i, b := range h.bounds {
				hs.Buckets = append(hs.Buckets, BucketSnap{LE: b, Count: h.buckets[i].Load()})
			}
			hs.Overflow = h.buckets[len(h.bounds)].Load()
			snap.Histograms = append(snap.Histograms, hs)
		}
	}
	return snap
}

// Counter returns the snapshot value of a counter, or 0 when absent.
// Labels need not be sorted. Test helper-grade convenience.
func (s *Snapshot) Counter(name string, labels ...Label) int64 {
	want := labelMap(normalize(name, labels))
	for _, c := range s.Counters {
		if c.Name == name && mapsEqual(c.Labels, want) {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the snapshot value of a gauge, or 0 when absent.
func (s *Snapshot) Gauge(name string, labels ...Label) int64 {
	want := labelMap(normalize(name, labels))
	for _, g := range s.Gauges {
		if g.Name == name && mapsEqual(g.Labels, want) {
			return g.Value
		}
	}
	return 0
}

// Histogram returns the snapshot of a histogram, or nil when absent.
func (s *Snapshot) Histogram(name string, labels ...Label) *HistSnap {
	want := labelMap(normalize(name, labels))
	for i := range s.Histograms {
		h := &s.Histograms[i]
		if h.Name == name && mapsEqual(h.Labels, want) {
			return h
		}
	}
	return nil
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
