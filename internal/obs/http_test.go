package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestMetricsEndpoint is the endpoint smoke test: serve a registry on a
// real socket, GET /metrics, decode the JSON, and check the numbers and
// the pprof index both answer.
func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("transport_retries_total", L("cause", "dial")).Add(2)
	sp := r.StartSpan("query")
	sp.End("ok")

	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	if got := snap.Counter("transport_retries_total", L("cause", "dial")); got != 2 {
		t.Fatalf("served counter = %d, want 2", got)
	}
	if h := snap.Histogram(phaseSecondsName, L("phase", "query"), L("outcome", "ok")); h == nil || h.Count != 1 {
		t.Fatalf("served phase histogram = %+v", h)
	}

	// Write methods are rejected.
	post, err := http.Post(fmt.Sprintf("http://%s/metrics", addr), "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", post.StatusCode)
	}

	// pprof rides along on the same mux.
	pp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(pp.Body)
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: status %d body %.80q", pp.StatusCode, body)
	}
}
