package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// metricsPayload is the /metrics document: the snapshot plus the
// build/runtime identity block, so a raw curl already answers "what
// binary is this and how long has it been up".
type metricsPayload struct {
	Build *BuildInfoSnap `json:"build"`
	*Snapshot
}

// Handler serves the registry as a JSON snapshot (Snapshot's schema
// plus a "build" info block). GET only; the endpoint is read-only
// introspection.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "metrics endpoint is read-only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(&metricsPayload{Build: BuildInfo(), Snapshot: r.Snapshot()})
	})
}

// TracesHandler serves the flight recorder's retained traces as JSON:
// {"traces": [...]} newest first. With slow=true it serves the
// slow/failed reservoir instead of the recent ring. Trace JSON is
// privacy-safe by construction — every span field is a closed enum, a
// bucket label, or a duration.
func TracesHandler(rec *Recorder, slow bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "traces endpoint is read-only", http.StatusMethodNotAllowed)
			return
		}
		traces := rec.Snapshot()
		if slow {
			traces = rec.SlowSnapshot()
		}
		if traces == nil {
			traces = []*TraceSnap{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string][]*TraceSnap{"traces": traces})
	})
}

// NewMux builds the introspection mux: /metrics (JSON snapshot),
// /traces and /traces/slow (the flight recorder), and the standard
// net/http/pprof handlers under /debug/pprof/. Only aggregate telemetry,
// closed-enum traces, and runtime profiles are exposed — the privacy
// contract keeps query data out of the former two, and the latter never
// held any.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/traces", TracesHandler(r.Recorder(), false))
	mux.Handle("/traces/slow", TracesHandler(r.Recorder(), true))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the introspection endpoint on addr (":0" picks a free
// port) and returns the bound address and a shutdown func. The server
// runs until the shutdown func is called; serving errors after shutdown
// are ignored. The full metric catalog is pre-registered on r first, so
// even the very first snapshot enumerates every series the process can
// emit (all zeros until the corresponding code path runs).
func Serve(addr string, r *Registry) (net.Addr, func() error, error) {
	return ServeMux(addr, r, nil)
}

// ServeMux is Serve with an extension hook: when register is non-nil it
// may add handlers (health endpoints, admin surfaces) to the mux before
// the server starts. The standard /metrics and /debug/pprof/ routes are
// installed first, so an extension cannot shadow them accidentally
// without panicking on the duplicate pattern.
func ServeMux(addr string, r *Registry, register func(*http.ServeMux)) (net.Addr, func() error, error) {
	MustPreRegister(r)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	mux := NewMux(r)
	if register != nil {
		register(mux)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln.Addr(), srv.Close, nil
}
