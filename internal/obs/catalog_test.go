package obs

import "testing"

// countSeries tallies snapshot entries so idempotence checks can compare
// catalog cardinality before and after a second registration pass.
func countSeries(s *Snapshot) int {
	return len(s.Counters) + len(s.Gauges) + len(s.Histograms)
}

// TestCatalogPreRegistersAtZero is the satellite's contract: a fresh
// registry after MustPreRegister snapshots the complete catalog with
// every series at zero — names valid, labels inside their closed enums,
// nothing counted before the corresponding code path has run.
func TestCatalogPreRegistersAtZero(t *testing.T) {
	r := NewRegistry()
	MustPreRegister(r)
	s := r.Snapshot()

	if n := countSeries(s); n == 0 {
		t.Fatal("catalog registered nothing")
	}
	assertPrivacySafe(t, s)

	for _, c := range s.Counters {
		if c.Value != 0 {
			t.Errorf("counter %s%v = %d before first use, want 0", c.Name, c.Labels, c.Value)
		}
	}
	for _, g := range s.Gauges {
		if g.Value != 0 {
			t.Errorf("gauge %s%v = %d before first use, want 0", g.Name, g.Labels, g.Value)
		}
	}
	for _, h := range s.Histograms {
		if h.Count != 0 || h.Sum != 0 {
			t.Errorf("histogram %s%v count=%d sum=%g before first use, want zeros", h.Name, h.Labels, h.Count, h.Sum)
		}
	}
}

// TestCatalogIdempotent pins that registration is get-or-create: a second
// MustPreRegister (or live instrumentation racing the endpoint's own
// pre-registration) must not duplicate or mutate series.
func TestCatalogIdempotent(t *testing.T) {
	r := NewRegistry()
	MustPreRegister(r)
	first := countSeries(r.Snapshot())

	// Live traffic on a catalog series, then a second registration pass.
	r.Counter("transport_retries_total", L("cause", "dial")).Inc()
	MustPreRegister(r)

	s := r.Snapshot()
	if got := countSeries(s); got != first {
		t.Fatalf("series count changed across re-registration: %d -> %d", first, got)
	}
	if got := s.Counter("transport_retries_total", L("cause", "dial")); got != 1 {
		t.Fatalf("re-registration reset a live counter: got %d, want 1", got)
	}
}

// TestCatalogCoversKnownFamilies spot-checks that the single call site
// really covers every subsystem — the two families that used to be
// registered ad hoc in transport.Pool, plus the parallel pool added in
// this layer.
func TestCatalogCoversKnownFamilies(t *testing.T) {
	r := NewRegistry()
	MustPreRegister(r)
	s := r.Snapshot()

	wantCounters := [][2]string{
		{"transport_retries_total", "cause"},
		{"group_dropouts_total", "cause"},
		{"load_sessions_total", "stage"},
		{"load_sessions_total", "outcome"},
		{"load_oracle_total", "verdict"},
		{"shard_searches_total", "grid"},
	}
	for _, w := range wantCounters {
		found := false
		for _, c := range s.Counters {
			if c.Name == w[0] && c.Labels[w[1]] != "" {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("catalog is missing counter family %s{%s}", w[0], w[1])
		}
	}
	if s.Histogram("parallel_task_seconds") == nil {
		t.Error("catalog is missing parallel_task_seconds")
	}
	if s.Histogram("parallel_batch_size") == nil {
		t.Error("catalog is missing parallel_batch_size")
	}
	found := false
	for _, g := range s.Gauges {
		if g.Name == "parallel_pool_depth" {
			found = true
		}
	}
	if !found {
		t.Error("catalog is missing parallel_pool_depth")
	}
	if s.Histogram("load_query_seconds", L("stage", "measure")) == nil {
		t.Error("catalog is missing load_query_seconds{stage=measure}")
	}
	if s.Histogram("load_sched_lag_seconds") == nil {
		t.Error("catalog is missing load_sched_lag_seconds")
	}
	if s.Histogram("shard_scanned") == nil {
		t.Error("catalog is missing shard_scanned")
	}
	if s.Histogram("shard_seed_scanned") == nil {
		t.Error("catalog is missing shard_seed_scanned")
	}
	if s.Histogram("shard_build_seconds") == nil {
		t.Error("catalog is missing shard_build_seconds")
	}
}
