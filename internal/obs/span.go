package obs

import (
	"sync/atomic"
	"time"
)

// Span metric names. One histogram and two counters describe every phase
// of every query; the closed "phase" and "outcome" enums are the only
// labels, so span telemetry aggregates across sessions by construction —
// there is deliberately no per-session series to correlate.
const (
	phaseSecondsName = "ppgnn_phase_seconds"
	phaseTotalName   = "ppgnn_phase_total"
	phaseRetriesName = "ppgnn_phase_retries_total"
)

// Span measures one protocol phase of one query: wall time from StartSpan
// to End, a retry count, and an outcome label. Spans are cheap (one
// time.Now at each end) and safe to use from multiple goroutines
// (AddRetry is atomic; End is idempotent and returns the duration).
type Span struct {
	reg     *Registry
	phase   string
	start   time.Time
	retries atomic.Int64
	ended   atomic.Bool
	node    *TraceSpan // optional trace node mirroring this span
}

// StartSpan begins timing one phase. The phase string is clamped to the
// closed "phase" enum, so a caller cannot accidentally mint a per-query
// series.
func (r *Registry) StartSpan(phase string) *Span {
	return &Span{reg: r, phase: ClampLabel("phase", phase), start: time.Now()}
}

// Attach mirrors the span onto a trace node: End and AddRetry forward
// to it, so one instrumentation site feeds both the aggregate phase
// metrics and the per-query trace tree. Attaching nil is a no-op, which
// keeps untraced call sites unconditional.
func (s *Span) Attach(node *TraceSpan) *Span {
	if s == nil || node == nil {
		return s
	}
	s.node = node
	return s
}

// AddRetry notes one retried exchange inside the phase.
func (s *Span) AddRetry() {
	if s == nil {
		return
	}
	s.retries.Add(1)
	s.node.AddRetry()
}

// End stops the span and records it under the given outcome (clamped to
// the closed "outcome" enum). A second End is a no-op returning the same
// measurement basis (time since start). It returns the wall time so
// callers can reuse the measurement.
func (s *Span) End(outcome string) time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if !s.ended.CompareAndSwap(false, true) {
		return d
	}
	outcome = ClampLabel("outcome", outcome)
	s.node.End(outcome)
	ph := L("phase", s.phase)
	s.reg.Histogram(phaseSecondsName, TimeBuckets, ph, L("outcome", outcome)).Observe(d.Seconds())
	s.reg.Counter(phaseTotalName, ph, L("outcome", outcome)).Inc()
	if n := s.retries.Load(); n > 0 {
		s.reg.Counter(phaseRetriesName, ph).Add(n)
	}
	return d
}

// EndErr ends the span with Outcome(err) — the common "defer-friendly"
// shape for phases whose outcome is fully described by their error.
func (s *Span) EndErr(err error) time.Duration { return s.End(Outcome(err)) }
