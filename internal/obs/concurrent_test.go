package obs

import (
	"math/rand"
	"sync"
	"testing"
)

// TestHistogramConcurrentWriters is the property test behind the load
// harness's latency numbers: W writers hammer one histogram (and its
// siblings under other labels) while a reader keeps snapshotting. At
// every instant the observable state must be internally consistent —
// bucket sums never exceed the count, quantiles are monotone in p and
// inside the bucket range — and once the writers join, counts and sums
// are conserved exactly.
func TestHistogramConcurrentWriters(t *testing.T) {
	const (
		writers = 8
		perW    = 5000
	)
	reg := NewRegistry()
	bounds := []float64{0.001, 0.01, 0.1, 1, 10}
	h := reg.Histogram("test_conc_seconds", bounds, L("stage", "measure"))
	sibling := reg.Histogram("test_conc_seconds", bounds, L("stage", "warmup"))

	var want struct {
		sync.Mutex
		sum float64
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// The reader races real snapshots against the writers and checks
	// invariants on every cut. t.Errorf is safe from other goroutines.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := reg.Snapshot()
			hs := snap.Histogram("test_conc_seconds", L("stage", "measure"))
			if hs == nil {
				continue
			}
			var inBuckets int64
			for _, b := range hs.Buckets {
				if b.Count < 0 {
					t.Errorf("negative bucket count %d", b.Count)
					return
				}
				inBuckets += b.Count
			}
			// Observe bumps the bucket before the count and the snapshot
			// reads them non-atomically, so a cut may be skewed — but only
			// by the number of writers mid-Observe, never unboundedly.
			if skew := inBuckets + hs.Overflow - hs.Count; skew > writers || skew < -writers {
				t.Errorf("buckets %d + overflow %d vs count %d: skew beyond %d in-flight writers",
					inBuckets, hs.Overflow, hs.Count, writers)
				return
			}
			if !(hs.P50 <= hs.P95 && hs.P95 <= hs.P99) {
				t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v", hs.P50, hs.P95, hs.P99)
				return
			}
			if hs.P99 > bounds[len(bounds)-1] || hs.P50 < 0 {
				t.Errorf("quantile outside bucket range: p50=%v p99=%v", hs.P50, hs.P99)
				return
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			local := 0.0
			for i := 0; i < perW; i++ {
				// Spread across buckets, including the overflow bucket.
				v := rng.Float64() * 20
				h.Observe(v)
				local += v
				if i%7 == 0 {
					sibling.Observe(v) // label siblings must not interfere
				}
			}
			want.Lock()
			want.sum += local
			want.Unlock()
		}(int64(100 + w))
	}
	wg.Wait()
	close(stop)
	<-readerDone

	// Conservation after the join: exact count, exact sum (float adds are
	// order-dependent, so compare within floating tolerance), and the
	// final buckets partition the count exactly.
	if got := h.Count(); got != writers*perW {
		t.Fatalf("count %d, want %d — observations lost", got, writers*perW)
	}
	if got := h.Sum(); !closeEnough(got, want.sum) {
		t.Fatalf("sum %v, want %v", got, want.sum)
	}
	hs := reg.Snapshot().Histogram("test_conc_seconds", L("stage", "measure"))
	var inBuckets int64
	for _, b := range hs.Buckets {
		inBuckets += b.Count
	}
	if inBuckets+hs.Overflow != hs.Count {
		t.Fatalf("final buckets %d + overflow %d != count %d", inBuckets, hs.Overflow, hs.Count)
	}
	// Quantiles of the settled histogram are monotone across a dense
	// sweep of p, not just the three published points.
	prev := 0.0
	for p := 0.05; p < 1.0; p += 0.05 {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile(%.2f)=%v < Quantile(prev)=%v", p, q, prev)
		}
		prev = q
	}
	// The sibling label saw its own, smaller stream.
	if sc := sibling.Count(); sc <= 0 || sc >= writers*perW {
		t.Fatalf("sibling count %d outside (0, %d)", sc, writers*perW)
	}
}

// TestCounterConcurrentWriters: the load harness's outcome counters are
// incremented from every worker goroutine; increments must never be
// lost, and label series must stay independent.
func TestCounterConcurrentWriters(t *testing.T) {
	const (
		writers = 8
		perW    = 10000
	)
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ok := reg.Counter("test_conc_total", L("outcome", "ok"))
			bad := reg.Counter("test_conc_total", L("outcome", "error"))
			for i := 0; i < perW; i++ {
				ok.Inc()
				if i%10 == 0 {
					bad.Inc()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := reg.Snapshot()
	if got := snap.Counter("test_conc_total", L("outcome", "ok")); got != writers*perW {
		t.Fatalf("ok = %d, want %d", got, writers*perW)
	}
	if got := snap.Counter("test_conc_total", L("outcome", "error")); got != writers*perW/10 {
		t.Fatalf("error = %d, want %d", got, writers*perW/10)
	}
}

func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 1 {
		scale = 1
	}
	return d/scale < 1e-9
}
