package obs

import (
	"encoding/json"
	"math"
	"sync"
	"time"
)

// Flight recorder defaults. The ring holds the most recent completed
// traces regardless of how they went; the slow reservoir additionally
// retains traces that were slow or failed, so a burst of healthy
// traffic cannot flush the interesting ones out of memory.
const (
	// DefaultTraceRing is the capacity of the recent-trace ring buffer.
	DefaultTraceRing = 64
	// DefaultSlowReservoir is the capacity of the slow/failed reservoir.
	DefaultSlowReservoir = 32
	// DefaultSlowThreshold marks a trace slow when its root span takes
	// at least this long.
	DefaultSlowThreshold = time.Second
)

// Recorder metric names (registered in catalog.go).
const (
	traceStartedName   = "ppgnn_trace_started_total"
	traceRemoteName    = "ppgnn_trace_remote_total"
	traceCompletedName = "ppgnn_trace_completed_total"
	traceSlowName      = "ppgnn_trace_slow_retained_total"
	traceDumpsName     = "ppgnn_trace_dumps_total"
)

// Recorder is the per-registry flight recorder: it originates sampled
// traces, adopts wire-propagated ones, and retains completed trace
// trees in two bounded stores — a ring of the last N traces and a
// reservoir of slow/failed ones. All methods are nil-safe so untraced
// configurations pay nothing.
type Recorder struct {
	reg *Registry

	mu       sync.Mutex
	ring     []*TraceSnap // most recent completed traces, oldest first
	ringCap  int
	slow     []*TraceSnap // slow/failed traces, oldest first
	slowCap  int
	slowThr  time.Duration
	sampleHi uint64 // ids at or below this are sampled
}

func newRecorder(reg *Registry) *Recorder {
	return &Recorder{
		reg:      reg,
		ringCap:  DefaultTraceRing,
		slowCap:  DefaultSlowReservoir,
		slowThr:  DefaultSlowThreshold,
		sampleHi: math.MaxUint64,
	}
}

// Recorder returns the registry's flight recorder, creating it on
// first use. Nil-safe: a nil registry has a nil recorder, and a nil
// recorder never traces.
func (r *Registry) Recorder() *Recorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rec == nil {
		r.rec = newRecorder(r)
	}
	return r.rec
}

// SetSampleRate sets the head-sampling rate in [0, 1]: the fraction of
// locally originated traces that are recorded. The sampling coin is the
// crypto-random trace id itself, so the decision is uniform and free.
// Wire-propagated traces (StartRemote) are never re-sampled — the
// origin already decided.
func (rec *Recorder) SetSampleRate(rate float64) {
	if rec == nil {
		return
	}
	var hi uint64
	switch {
	case rate >= 1:
		hi = math.MaxUint64
	case rate <= 0:
		hi = 0
	default:
		hi = uint64(rate * math.MaxUint64)
	}
	rec.mu.Lock()
	rec.sampleHi = hi
	rec.mu.Unlock()
}

// SetSlowThreshold sets the root duration at or beyond which a trace is
// retained in the slow reservoir (non-positive restores the default).
func (rec *Recorder) SetSlowThreshold(d time.Duration) {
	if rec == nil {
		return
	}
	if d <= 0 {
		d = DefaultSlowThreshold
	}
	rec.mu.Lock()
	rec.slowThr = d
	rec.mu.Unlock()
}

// Start originates a new trace rooted at phase, or returns nil when
// head-sampling skips this query. The nil result is a fully functional
// untraced no-op.
func (rec *Recorder) Start(phase string) *Trace {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	hi := rec.sampleHi
	rec.mu.Unlock()
	if hi == 0 {
		return nil
	}
	id := newTraceID()
	if uint64(id) > hi {
		return nil
	}
	rec.reg.Counter(traceStartedName).Inc()
	return rec.adopt(id, phase, false)
}

// StartRemote adopts a wire-propagated trace id: the upstream already
// made the sampling decision, so the server always records. A zero id
// returns nil (untraced).
func (rec *Recorder) StartRemote(id TraceID, phase string) *Trace {
	if rec == nil || id == 0 {
		return nil
	}
	rec.reg.Counter(traceRemoteName).Inc()
	return rec.adopt(id, phase, true)
}

func (rec *Recorder) adopt(id TraceID, phase string, remote bool) *Trace {
	now := time.Now()
	root := &TraceSpan{
		phase:      ClampLabel("phase", phase),
		traceStart: now,
		start:      now,
	}
	t := &Trace{id: id, root: root}
	root.onEnd = func(s *TraceSpan) { rec.complete(t, remote) }
	return t
}

// complete freezes the trace tree and files it in the ring (always) and
// the slow reservoir (when slow or failed). Both stores are bounded:
// the oldest entry is evicted to make room.
func (rec *Recorder) complete(t *Trace, remote bool) {
	snap := &TraceSnap{TraceID: t.id.String(), Remote: remote, Root: t.root.snap()}
	rec.reg.Counter(traceCompletedName).Inc()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.ring = append(rec.ring, snap)
	if over := len(rec.ring) - rec.ringCap; over > 0 {
		rec.ring = append(rec.ring[:0], rec.ring[over:]...)
	}
	if snap.Root.Outcome != "ok" || snap.Root.Seconds >= rec.slowThr.Seconds() {
		rec.reg.Counter(traceSlowName).Inc()
		rec.slow = append(rec.slow, snap)
		if over := len(rec.slow) - rec.slowCap; over > 0 {
			rec.slow = append(rec.slow[:0], rec.slow[over:]...)
		}
	}
}

// Snapshot returns the retained recent traces, newest first.
func (rec *Recorder) Snapshot() []*TraceSnap {
	return rec.copyStore(func() []*TraceSnap { return rec.ring })
}

// SlowSnapshot returns the retained slow/failed traces, newest first.
func (rec *Recorder) SlowSnapshot() []*TraceSnap {
	return rec.copyStore(func() []*TraceSnap { return rec.slow })
}

func (rec *Recorder) copyStore(get func() []*TraceSnap) []*TraceSnap {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	src := get()
	out := make([]*TraceSnap, len(src))
	for i, s := range src {
		out[len(src)-1-i] = s // newest first
	}
	rec.mu.Unlock()
	return out
}

// TraceDump is the JSON document a dump produces: the trigger reason
// (a code literal, clamped to the metric naming contract so a dynamic
// string cannot ride along) and both retained stores.
type TraceDump struct {
	Reason string       `json:"reason"`
	Recent []*TraceSnap `json:"recent"`
	Slow   []*TraceSnap `json:"slow"`
}

// Dump captures the recorder's full retained state. It is called on
// watchdog trips, rejected reloads, and failed gate SLO checks, so the
// traces surrounding a failure survive the process that caused it.
// Returns nil for a nil recorder.
func (rec *Recorder) Dump(reason string) *TraceDump {
	if rec == nil {
		return nil
	}
	if !ValidName(reason) {
		reason = OtherValue
	}
	rec.reg.Counter(traceDumpsName).Inc()
	return &TraceDump{Reason: reason, Recent: rec.Snapshot(), Slow: rec.SlowSnapshot()}
}

// JSON renders the dump for a sink (stderr, a report file). Nil-safe.
func (d *TraceDump) JSON() []byte {
	if d == nil {
		return nil
	}
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil { // unreachable: the types are marshal-safe
		return []byte(`{"reason":"` + d.Reason + `","error":"marshal failed"}`)
	}
	return b
}
