package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// processStart anchors the uptime report. Set once at init, it is the
// only absolute timestamp-derived value the metrics endpoint exposes,
// and it describes the process, not any query.
var processStart = time.Now()

// BuildInfoSnap is the build/runtime identity block served on /metrics:
// what binary is running, on how many cores, for how long. No value in
// it derives from query data.
type BuildInfoSnap struct {
	GoVersion     string  `json:"go_version"`
	Revision      string  `json:"vcs_revision,omitempty"`
	Modified      bool    `json:"vcs_modified,omitempty"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	NumCPU        int     `json:"num_cpu"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// BuildInfo reports the running binary's identity via
// debug.ReadBuildInfo. Revision fields stay empty when the binary was
// built outside a VCS checkout (e.g. from a tarball).
func BuildInfo() *BuildInfoSnap {
	b := &BuildInfoSnap{
		GoVersion:     runtime.Version(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		UptimeSeconds: time.Since(processStart).Seconds(),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				b.Revision = s.Value
			case "vcs.modified":
				b.Modified = s.Value == "true"
			}
		}
	}
	return b
}
