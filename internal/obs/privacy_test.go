package obs

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

// walkSnapshot applies fn to every (name, labels) pair in a snapshot.
func walkSnapshot(s *Snapshot, fn func(name string, labels map[string]string)) {
	for _, c := range s.Counters {
		fn(c.Name, c.Labels)
	}
	for _, g := range s.Gauges {
		fn(g.Name, g.Labels)
	}
	for _, h := range s.Histograms {
		fn(h.Name, h.Labels)
	}
}

// assertPrivacySafe is the redaction contract of DESIGN.md §9 as code:
// names match the closed charset, label keys are registered, label values
// sit inside their key's closed enum. Anything dynamic — a coordinate, a
// ciphertext hex string, a session id — fails at least one of the three.
// internal/integration reuses the same walk against the live Default
// registry after a full soak run (TestMetricsEndpointSoak).
func assertPrivacySafe(t *testing.T, s *Snapshot) {
	t.Helper()
	keys := make(map[string]bool)
	for _, k := range LabelKeys() {
		keys[k] = true
	}
	walkSnapshot(s, func(name string, labels map[string]string) {
		if !ValidName(name) {
			t.Errorf("metric name %q violates the naming contract", name)
		}
		for k, v := range labels {
			if !keys[k] {
				t.Errorf("metric %q uses unregistered label key %q", name, k)
				continue
			}
			if !AllowedValues(k, v) {
				t.Errorf("metric %q label %s=%q is outside the closed enum", name, k, v)
			}
		}
	})
}

// TestPrivacyContract exercises the registry the way the whole stack does
// — spans, counters with error-derived causes, histograms — then tries
// actively hostile label values, and proves the resulting snapshot (the
// exact bytes -metrics-addr serves) contains nothing but catalog names
// and closed-enum labels.
func TestPrivacyContract(t *testing.T) {
	r := NewRegistry()

	// Legitimate instrumentation.
	r.Counter("transport_retries_total", L("cause", "dial")).Inc()
	r.Gauge("transport_inflight").Set(3)
	r.Histogram("transport_frame_bytes", SizeBuckets, L("dir", "rx")).Observe(512)
	sp := r.StartSpan("decrypt")
	sp.End("quorum_lost")

	// Hostile label values: coordinates, a ciphertext-looking blob, a
	// session id, an error string with an address in it. All must clamp.
	hostile := []string{
		"48.858844,2.294351",
		"0x8f3aa91bc4",
		"session=11400714819323198485",
		"dial tcp 10.1.2.3:9042: connection refused",
	}
	for _, v := range hostile {
		r.Counter("group_dropouts_total", L("cause", v)).Inc()
		r.Histogram("group_round_seconds", nil, L("kind", v)).Observe(0.1)
	}

	s := r.Snapshot()
	assertPrivacySafe(t, s)

	// The hostile strings must not appear anywhere in the serialized
	// snapshot — not as names, labels, or values.
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range hostile {
		if strings.Contains(string(raw), v) {
			t.Fatalf("hostile value %q leaked into the snapshot", v)
		}
	}
	// And the clamped series exist, so the events were still counted.
	if got := s.Counter("group_dropouts_total", L("cause", OtherValue)); got != int64(len(hostile)) {
		t.Fatalf("clamped dropouts = %d, want %d", got, len(hostile))
	}
}

// TestUnregisteredLabelKeyPanics pins the "keys are code literals" rule.
func TestUnregisteredLabelKeyPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("unregistered label key must panic")
		}
	}()
	r.Counter("test_total", L("user_location", "0.5,0.5"))
}

// TestContractEnumsAreClosed spot-checks that the enums hold no value
// that itself looks like dynamic data (digits-heavy, separators).
func TestContractEnumsAreClosed(t *testing.T) {
	suspicious := regexp.MustCompile(`[0-9]{3,}|[,:;=/]| `)
	for _, k := range LabelKeys() {
		for _, v := range enumValues(k) {
			if suspicious.MatchString(v) {
				t.Errorf("enum %s contains suspicious value %q", k, v)
			}
		}
	}
}

func enumValues(key string) []string {
	var out []string
	for v := range labelEnums[key] {
		out = append(out, v)
	}
	return out
}
