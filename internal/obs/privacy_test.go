package obs

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

// walkSnapshot applies fn to every (name, labels) pair in a snapshot.
func walkSnapshot(s *Snapshot, fn func(name string, labels map[string]string)) {
	for _, c := range s.Counters {
		fn(c.Name, c.Labels)
	}
	for _, g := range s.Gauges {
		fn(g.Name, g.Labels)
	}
	for _, h := range s.Histograms {
		fn(h.Name, h.Labels)
	}
}

// assertPrivacySafe is the redaction contract of DESIGN.md §9 as code:
// names match the closed charset, label keys are registered, label values
// sit inside their key's closed enum. Anything dynamic — a coordinate, a
// ciphertext hex string, a session id — fails at least one of the three.
// internal/integration reuses the same walk against the live Default
// registry after a full soak run (TestMetricsEndpointSoak).
func assertPrivacySafe(t *testing.T, s *Snapshot) {
	t.Helper()
	keys := make(map[string]bool)
	for _, k := range LabelKeys() {
		keys[k] = true
	}
	walkSnapshot(s, func(name string, labels map[string]string) {
		if !ValidName(name) {
			t.Errorf("metric name %q violates the naming contract", name)
		}
		for k, v := range labels {
			if !keys[k] {
				t.Errorf("metric %q uses unregistered label key %q", name, k)
				continue
			}
			if !AllowedValues(k, v) {
				t.Errorf("metric %q label %s=%q is outside the closed enum", name, k, v)
			}
		}
	})
}

// TestPrivacyContract exercises the registry the way the whole stack does
// — spans, counters with error-derived causes, histograms — then tries
// actively hostile label values, and proves the resulting snapshot (the
// exact bytes -metrics-addr serves) contains nothing but catalog names
// and closed-enum labels.
func TestPrivacyContract(t *testing.T) {
	r := NewRegistry()

	// Legitimate instrumentation.
	r.Counter("transport_retries_total", L("cause", "dial")).Inc()
	r.Gauge("transport_inflight").Set(3)
	r.Histogram("transport_frame_bytes", SizeBuckets, L("dir", "rx")).Observe(512)
	sp := r.StartSpan("decrypt")
	sp.End("quorum_lost")

	// Hostile label values: coordinates, a ciphertext-looking blob, a
	// session id, an error string with an address in it. All must clamp.
	hostile := []string{
		"48.858844,2.294351",
		"0x8f3aa91bc4",
		"session=11400714819323198485",
		"dial tcp 10.1.2.3:9042: connection refused",
	}
	for _, v := range hostile {
		r.Counter("group_dropouts_total", L("cause", v)).Inc()
		r.Histogram("group_round_seconds", nil, L("kind", v)).Observe(0.1)
	}

	s := r.Snapshot()
	assertPrivacySafe(t, s)

	// The hostile strings must not appear anywhere in the serialized
	// snapshot — not as names, labels, or values.
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range hostile {
		if strings.Contains(string(raw), v) {
			t.Fatalf("hostile value %q leaked into the snapshot", v)
		}
	}
	// And the clamped series exist, so the events were still counted.
	if got := s.Counter("group_dropouts_total", L("cause", OtherValue)); got != int64(len(hostile)) {
		t.Fatalf("clamped dropouts = %d, want %d", got, len(hostile))
	}
}

// TestTracePrivacyContract extends the redaction contract to the flight
// recorder: hostile strings pushed through every trace surface — span
// phases, outcomes, every registered attribute key, the dump reason —
// must clamp to the closed enums, and the serialized trace JSON (the
// exact bytes /traces serves) must not contain a single one of them.
func TestTracePrivacyContract(t *testing.T) {
	r := NewRegistry()
	rec := r.Recorder()

	hostile := []string{
		"48.858844,2.294351",              // a location
		"0x8f3aa91bc4deadbeef",            // a ciphertext fragment
		"acme-corp-prod",                  // a tenant name
		"session=11400714819323198485",    // a session id
		"dial tcp 10.1.2.3:9042: refused", // an error with an address
		"workers=37",                      // a raw number dodging buckets
	}

	tr := rec.Start("session")
	for _, v := range hostile {
		sp := tr.Root().Child(v) // hostile phase
		for _, key := range TraceAttrKeys() {
			sp.SetAttr(key, v) // hostile value under every legal key
		}
		sp.End(v) // hostile outcome
	}
	tr.End("ok")

	snaps := rec.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("retained %d traces, want 1", len(snaps))
	}
	var walk func(s *SpanSnap)
	walk = func(s *SpanSnap) {
		if !AllowedValues("phase", s.Phase) {
			t.Errorf("span phase %q escaped the closed enum", s.Phase)
		}
		if !AllowedValues("outcome", s.Outcome) {
			t.Errorf("span outcome %q escaped the closed enum", s.Outcome)
		}
		for k, v := range s.Attrs {
			if !AllowedTraceAttr(k, v) {
				t.Errorf("span attr %s=%q escaped the closed catalog", k, v)
			}
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(snaps[0].Root)

	raw, err := json.Marshal(rec.Dump("tenant=acme corp")) // hostile reason too
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range hostile {
		if strings.Contains(string(raw), v) {
			t.Fatalf("hostile value %q leaked into trace JSON", v)
		}
	}
	if strings.Contains(string(raw), "acme") {
		t.Fatal("hostile dump reason leaked into trace JSON")
	}
}

// TestUnregisteredTraceAttrKeyPanics pins the same "keys are code
// literals" rule for trace attributes.
func TestUnregisteredTraceAttrKeyPanics(t *testing.T) {
	r := NewRegistry()
	tr := r.Recorder().Start("session")
	defer tr.End("ok")
	defer func() {
		if recover() == nil {
			t.Fatal("unregistered trace attr key must panic")
		}
	}()
	tr.Root().SetAttr("user_location", "0.5,0.5")
}

// TestTraceAttrEnumsAreClosed holds the trace attribute catalog to the
// same no-dynamic-data bar as the label enums. Bucket labels (le_128,
// gt_2s) legitimately carry digits, so they are checked against the
// strict bucket grammar instead of the digit heuristic.
func TestTraceAttrEnumsAreClosed(t *testing.T) {
	bucket := regexp.MustCompile(`^(le|gt)_[0-9]+(ms|s)?$`)
	suspicious := regexp.MustCompile(`[0-9]{3,}|[,:;=/]| `)
	for _, k := range TraceAttrKeys() {
		for v := range traceAttrEnums[k] {
			if bucket.MatchString(v) {
				continue
			}
			if suspicious.MatchString(v) {
				t.Errorf("trace attr enum %s contains suspicious value %q", k, v)
			}
		}
	}
}

// TestUnregisteredLabelKeyPanics pins the "keys are code literals" rule.
func TestUnregisteredLabelKeyPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("unregistered label key must panic")
		}
	}()
	r.Counter("test_total", L("user_location", "0.5,0.5"))
}

// TestContractEnumsAreClosed spot-checks that the enums hold no value
// that itself looks like dynamic data (digits-heavy, separators).
func TestContractEnumsAreClosed(t *testing.T) {
	suspicious := regexp.MustCompile(`[0-9]{3,}|[,:;=/]| `)
	for _, k := range LabelKeys() {
		for _, v := range enumValues(k) {
			if suspicious.MatchString(v) {
				t.Errorf("enum %s contains suspicious value %q", k, v)
			}
		}
	}
}

func enumValues(key string) []string {
	var out []string
	for v := range labelEnums[key] {
		out = append(out, v)
	}
	return out
}
