package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", L("op", "enc"))
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same (name, labels) → same instrument.
	if r.Counter("test_ops_total", L("op", "enc")) != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Different label value → different instrument.
	if r.Counter("test_ops_total", L("op", "dec")) == c {
		t.Fatal("distinct labels returned the same counter")
	}

	g := r.Gauge("test_depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilInstrumentsAreNoops(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var s *Span
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	s.AddRetry()
	if d := s.End("ok"); d != 0 {
		t.Fatalf("nil span End = %v, want 0", d)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", []float64{0.01, 0.1, 1}, L("phase", "collect"))
	for i := 0; i < 90; i++ {
		h.Observe(0.05) // second bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(5) // overflow
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if want := 90*0.05 + 10*5.0; math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.01 || p50 > 0.1 {
		t.Fatalf("p50 = %v, want inside (0.01, 0.1]", p50)
	}
	// p95 rank lands in the overflow bucket → clamped to the last bound.
	if p95 := h.Quantile(0.95); p95 != 1 {
		t.Fatalf("p95 = %v, want clamp to 1", p95)
	}
	if h.Quantile(0.999) != 1 {
		t.Fatal("overflow quantiles must clamp to the largest finite bound")
	}

	empty := r.Histogram("test_empty_seconds", nil)
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestSnapshotAndReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", L("outcome", "ok")).Add(3)
	r.Gauge("test_gauge").Set(9)
	r.Histogram("test_hist_seconds", []float64{1, 10}).Observe(0.5)

	s := r.Snapshot()
	if got := s.Counter("test_total", L("outcome", "ok")); got != 3 {
		t.Fatalf("snapshot counter = %d, want 3", got)
	}
	if got := s.Gauge("test_gauge"); got != 9 {
		t.Fatalf("snapshot gauge = %d, want 9", got)
	}
	h := s.Histogram("test_hist_seconds")
	if h == nil || h.Count != 1 || h.Sum != 0.5 {
		t.Fatalf("snapshot histogram = %+v, want count 1 sum 0.5", h)
	}
	if len(h.Buckets) != 2 || h.Buckets[0].Count != 1 {
		t.Fatalf("buckets = %+v, want first bucket holding the sample", h.Buckets)
	}
	if s.Counter("test_absent") != 0 || s.Histogram("test_absent") != nil {
		t.Fatal("absent metrics must read as zero/nil")
	}

	r.Reset()
	s2 := r.Snapshot()
	if s2.Counter("test_total", L("outcome", "ok")) != 0 || s2.Gauge("test_gauge") != 0 {
		t.Fatal("Reset must zero values")
	}
	if h2 := s2.Histogram("test_hist_seconds"); h2 == nil || h2.Count != 0 || h2.Sum != 0 {
		t.Fatalf("Reset must keep registrations but zero histograms, got %+v", h2)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_kind")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("test_kind")
}

func TestBadNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "Has-Caps", "with space", "0leading", "semi;colon", "x=1"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q must violate the contract", name)
				}
			}()
			r.Counter(name)
		}()
	}
}

// TestRegistryRace hammers one registry from 64 goroutines — counters,
// gauges, histograms, spans, snapshots, and resets all interleaved — and
// is meant to run under -race (CI does). The only assertion is "no race,
// no panic, counts land": correctness of individual ops is covered above.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	const goroutines = 64
	const opsEach = 200
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				r.Counter("race_total", L("outcome", "ok")).Inc()
				r.Gauge("race_gauge").Add(1)
				r.Histogram("race_seconds", nil, L("phase", "collect")).Observe(float64(i) / 1000)
				sp := r.StartSpan("query")
				if i%3 == 0 {
					sp.AddRetry()
				}
				sp.End("ok")
				switch {
				case g == 0 && i%50 == 0:
					r.Reset()
				case i%25 == 0:
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	// After the last Reset no more than goroutines*opsEach increments can
	// remain; the counter must still be readable and non-negative.
	if v := r.Counter("race_total", L("outcome", "ok")).Value(); v < 0 || v > goroutines*opsEach {
		t.Fatalf("race_total = %d out of range", v)
	}
}
