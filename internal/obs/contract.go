package obs

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"strconv"
	"time"
)

// This file is the privacy contract's single source of truth: the closed
// set of label keys the registry accepts, and for each key the closed
// enum of values. Instrumentation anywhere in the stack can only attach
// labels that pass ClampLabel, so a metric label can never carry a
// coordinate, a ciphertext, a session id, or any other per-query datum —
// the worst an out-of-enum value becomes is the literal "other".
// TestPrivacyContract in privacy_test.go walks a live registry against
// these tables; DESIGN.md §9 documents the catalog.

// OtherValue replaces any label value outside its key's enum.
const OtherValue = "other"

// labelEnums maps each allowed label key to its closed value enum.
// Adding a key or value here is a reviewed code change — exactly the
// point: telemetry vocabulary grows by diff, never at runtime.
var labelEnums = map[string]map[string]bool{
	// phase: the protocol phases of Algorithm 1 as observed at runtime
	// (DESIGN.md §9 span taxonomy), plus "session" for the whole query.
	"phase": enum(
		"session",   // one full group query, end to end
		"collect",   // contribution collection (may span re-partitions)
		"partition", // partition-parameter solve for the current roster
		"query",     // encrypted query build + LSP round trip
		"lsp",       // server-side LSP evaluation (Algorithm 2)
		"decrypt",   // answer decryption (joint in threshold mode)
	),
	// outcome: how a phase or session ended. "exhausted" is a session
	// the transport gave up on after its retry budget (every attempt
	// failed transiently); "mismatch" is a load-harness session whose
	// decrypted answer disagreed with the plaintext oracle.
	"outcome": enum(
		"ok", "error", "timeout", "canceled",
		"quorum_lost", "bad_contribution", "remote", "panic", "drain", "busy",
		"exhausted", "mismatch",
	),
	// cause: why a retry, dropout, or shed happened.
	"cause": enum(
		"dial", "reset", "timeout", "eof", "busy", "draining",
		"equivocation", "bad_contribution", "quorum_lost",
		"canceled", "panic", "remote", OtherValue,
	),
	// op: paillier operation names.
	"op": enum(
		"enc", "dec", "add", "mul_plain", "dot", "mat_select",
		"rerandomize", "partial_dec", "combine",
	),
	// path: which decryption implementation ran.
	"path": enum("crt", "threshold"),
	// source: where encryption randomness came from.
	"source": enum("pool", "online"),
	// degree: paillier ciphertext degree ε_s; the protocol uses 1 and 2.
	"degree": enum("1", "2", OtherValue),
	// dir: frame direction relative to the instrumented endpoint.
	"dir": enum("rx", "tx"),
	// kind: which round family a group-session round belongs to.
	"kind": enum("collect", "decrypt"),
	// table: which modmath precomputed-table family was built (§11):
	// per-call Straus odd-power tables vs long-lived fixed-base tables.
	"table": enum("window", "fixed_base"),
	// result: whether a fixed-base exponentiation used its table, and
	// whether a svc config reload was applied or rejected.
	"result": enum("hit", "miss", "applied", "rejected"),
	// stage: which phase of an open-loop load run an arrival belongs
	// to (internal/load, DESIGN.md §12). Completions are attributed to
	// the stage their arrival fired in, so a query arriving in
	// "measure" and finishing during "drain" still counts as measured.
	"stage": enum("warmup", "measure", "drain"),
	// verdict: the conformance check of one load-harness answer
	// against the plaintext gnn oracle.
	"verdict": enum("match", "mismatch"),
	// tenant: the slot of the tenant a svc-layer session was routed to,
	// NOT its name. Slots are assigned by config order among the
	// non-default tenants ("t0".."t7"); tenants past the eighth clamp to
	// "other". Tenant names are operator-chosen strings and may carry
	// organizational information, so they never reach a metric.
	"tenant": enum(
		"default", "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	),
	// admission: how the svc admission gate disposed of a session:
	// admitted, shed by the tenant's session quota, shed by the adaptive
	// overload gate, or rejected because the tenant does not exist.
	"admission": enum("ok", "quota", "overload", "unknown"),
	// grid: whether the shard layer's hierarchical pruning grid was
	// active for a search (DESIGN.md §14). A boolean mode bit, never a
	// per-query datum.
	"grid": enum("on", "off"),
	// trigger: why the cross-session coalescer flushed a micro-batch
	// (DESIGN.md §15): the pending task count hit the size bound, the
	// oldest submission hit the flush deadline, or the coalescer was
	// closing and drained what it had.
	"trigger": enum("size", "deadline", "close"),
}

func enum(vs ...string) map[string]bool {
	m := make(map[string]bool, len(vs))
	for _, v := range vs {
		m[v] = true
	}
	return m
}

// traceAttrEnums is the closed catalog of trace-span attributes — the
// trace-tree analogue of labelEnums. Reused keys (tenant, admission,
// cause) share the metric enums; numeric facts enter only as bucket
// labels ("le_128", "gt_2s"), never as raw numbers, so a candidate
// count or retry-after hint is coarsened the same way its histogram
// is. SetAttr clamps values against this table and panics on
// unregistered keys; TestTracePrivacyContract proves the clamping on
// live trace JSON.
var traceAttrEnums = map[string]map[string]bool{
	"tenant":      labelEnums["tenant"],
	"admission":   labelEnums["admission"],
	"cause":       labelEnums["cause"],
	"workers":     enum(countBucketLabels()...),
	"candidates":  enum(countBucketLabels()...),
	"shards":      enum(countBucketLabels()...),
	"retry_after": enum(durationBucketLabels()...),
	// coalesced: whether the query's homomorphic batches were routed
	// through the cross-session coalescer (DESIGN.md §15). A boolean
	// mode bit, never a per-query datum.
	"coalesced": enum("on", "off"),
}

// retryAfterEdges are the bucket edges for the retry_after attribute.
// svc clamps its hint to [10ms, 2s], so the edges bracket that range.
var retryAfterEdges = []time.Duration{
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2 * time.Second,
}

func countBucketLabels() []string {
	out := make([]string, 0, len(CountBuckets)+1)
	for _, b := range CountBuckets {
		out = append(out, "le_"+strconv.FormatInt(int64(b), 10))
	}
	return append(out, "gt_"+strconv.FormatInt(int64(CountBuckets[len(CountBuckets)-1]), 10))
}

func durationBucketLabels() []string {
	out := make([]string, 0, len(retryAfterEdges)+1)
	for _, e := range retryAfterEdges {
		out = append(out, "le_"+durationEdgeLabel(e))
	}
	return append(out, "gt_"+durationEdgeLabel(retryAfterEdges[len(retryAfterEdges)-1]))
}

func durationEdgeLabel(d time.Duration) string {
	if d < time.Second {
		return strconv.FormatInt(d.Milliseconds(), 10) + "ms"
	}
	return strconv.FormatInt(int64(d/time.Second), 10) + "s"
}

// CountBucketLabel coarsens an item count (worker width, candidate-set
// size) into its closed bucket label, the only form in which counts may
// enter a trace.
func CountBucketLabel(n int) string {
	for _, b := range CountBuckets {
		if float64(n) <= b {
			return "le_" + strconv.FormatInt(int64(b), 10)
		}
	}
	return "gt_" + strconv.FormatInt(int64(CountBuckets[len(CountBuckets)-1]), 10)
}

// DurationBucketLabel coarsens a duration (the svc retry-after hint)
// into its closed bucket label.
func DurationBucketLabel(d time.Duration) string {
	for _, e := range retryAfterEdges {
		if d <= e {
			return "le_" + durationEdgeLabel(e)
		}
	}
	return "gt_" + durationEdgeLabel(retryAfterEdges[len(retryAfterEdges)-1])
}

// ClampTraceAttr forces a trace attribute value into its key's closed
// enum; unregistered keys panic, exactly like ClampLabel.
func ClampTraceAttr(key, value string) string {
	vals, ok := traceAttrEnums[key]
	if !ok {
		panic("obs: trace attribute key " + key + " is not in the privacy contract")
	}
	if vals[value] {
		return value
	}
	return OtherValue
}

// TraceAttrKeys returns the allowed trace attribute keys (for the
// contract test and the smoke script's closed-catalog assertion).
func TraceAttrKeys() []string {
	out := make([]string, 0, len(traceAttrEnums))
	for k := range traceAttrEnums {
		out = append(out, k)
	}
	return out
}

// AllowedTraceAttr reports whether value is in key's trace attribute
// enum (OtherValue is implicitly in every enum).
func AllowedTraceAttr(key, value string) bool {
	vals, ok := traceAttrEnums[key]
	return ok && (vals[value] || value == OtherValue)
}

// ClampLabel forces a label value into its key's closed enum: in-enum
// values pass through, anything else becomes OtherValue. An unregistered
// key panics — keys are code literals, so that is a bug, not data.
func ClampLabel(key, value string) string {
	vals, ok := labelEnums[key]
	if !ok {
		panic("obs: label key " + key + " is not in the privacy contract")
	}
	if vals[value] {
		return value
	}
	return OtherValue
}

// LabelKeys returns the allowed label keys (for the contract test).
func LabelKeys() []string {
	out := make([]string, 0, len(labelEnums))
	for k := range labelEnums {
		out = append(out, k)
	}
	return out
}

// AllowedValues reports whether value is in key's enum (for the contract
// test; unknown keys are simply not allowed). OtherValue is implicitly in
// every enum — it is what ClampLabel degrades unknown values to.
func AllowedValues(key, value string) bool {
	vals, ok := labelEnums[key]
	return ok && (vals[value] || value == OtherValue)
}

// Cause classifies an error into the closed "cause" enum using only
// stdlib error taxonomy. Packages with richer taxonomies (core's
// RemoteError, QuorumError, ContributionError) map those themselves and
// fall back to this for plain network errors. Cause never returns the
// error text: the enum is the entire vocabulary.
func Cause(err error) string {
	switch {
	case err == nil:
		return OtherValue
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF):
		return "eof"
	case errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe):
		return "reset"
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return "timeout"
	}
	var oe *net.OpError
	if errors.As(err, &oe) {
		if oe.Op == "dial" {
			return "dial"
		}
		return "reset"
	}
	return OtherValue
}

// Outcome maps an error to the closed "outcome" enum: nil is "ok",
// deadline and cancellation are distinguished, everything else is
// "error". Packages with richer taxonomies refine before falling back.
func Outcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "error"
	}
}
