package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceTreeSnapshot(t *testing.T) {
	r := NewRegistry()
	rec := r.Recorder()

	tr := rec.Start("session")
	if tr == nil || tr.ID() == 0 {
		t.Fatal("default sample rate must trace every query")
	}
	collect := tr.Root().Child("collect")
	collect.Child("partition").End("ok")
	collect.End("ok")
	q := tr.Root().Child("query")
	q.SetAttr("workers", CountBucketLabel(4))
	q.SetAttr("candidates", CountBucketLabel(101))
	q.AddRetry()
	q.End("ok")
	tr.Root().Child("decrypt").End("ok")
	tr.End("ok")

	snaps := rec.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("recorder retained %d traces, want 1", len(snaps))
	}
	s := snaps[0]
	if s.TraceID != tr.ID().String() {
		t.Fatalf("trace id %q, want %q", s.TraceID, tr.ID())
	}
	if s.Remote {
		t.Fatal("locally originated trace marked remote")
	}
	root := s.Root
	if root.Phase != "session" || root.Outcome != "ok" {
		t.Fatalf("root = %s/%s", root.Phase, root.Outcome)
	}
	var phases []string
	for _, c := range root.Children {
		phases = append(phases, c.Phase)
	}
	if got := strings.Join(phases, ","); got != "collect,query,decrypt" {
		t.Fatalf("children = %s", got)
	}
	if root.Children[0].Children[0].Phase != "partition" {
		t.Fatalf("collect child = %+v", root.Children[0].Children)
	}
	qs := root.Children[1]
	if qs.Retries != 1 {
		t.Fatalf("query retries = %d", qs.Retries)
	}
	if qs.Attrs["workers"] != "le_4" || qs.Attrs["candidates"] != "le_128" {
		t.Fatalf("query attrs = %v", qs.Attrs)
	}
	if got := r.Snapshot().Counter(traceCompletedName); got != 1 {
		t.Fatalf("completed counter = %d", got)
	}
}

func TestTraceRingEviction(t *testing.T) {
	r := NewRegistry()
	rec := r.Recorder()
	var ids []string
	for i := 0; i < DefaultTraceRing+5; i++ {
		tr := rec.Start("session")
		ids = append(ids, tr.ID().String())
		tr.End("ok")
	}
	snaps := rec.Snapshot()
	if len(snaps) != DefaultTraceRing {
		t.Fatalf("ring holds %d, want %d", len(snaps), DefaultTraceRing)
	}
	// Newest first: the most recent id leads, the oldest five are gone.
	if snaps[0].TraceID != ids[len(ids)-1] {
		t.Fatalf("head = %s, want newest %s", snaps[0].TraceID, ids[len(ids)-1])
	}
	retained := make(map[string]bool, len(snaps))
	for _, s := range snaps {
		retained[s.TraceID] = true
	}
	for _, old := range ids[:5] {
		if retained[old] {
			t.Fatalf("evicted trace %s still in ring", old)
		}
	}
}

func TestSlowReservoirRetainsFailedAndSlow(t *testing.T) {
	r := NewRegistry()
	rec := r.Recorder()
	rec.SetSlowThreshold(time.Hour) // nothing is slow by duration

	fail := rec.Start("session")
	fail.End("quorum_lost")
	ok := rec.Start("session")
	ok.End("ok")

	slow := rec.SlowSnapshot()
	if len(slow) != 1 || slow[0].Root.Outcome != "quorum_lost" {
		t.Fatalf("slow reservoir = %+v, want just the failed trace", slow)
	}

	// Any positive duration crosses a zero-ish threshold: now an ok
	// trace is retained for being slow.
	rec.SetSlowThreshold(time.Nanosecond)
	slowOK := rec.Start("session")
	time.Sleep(time.Millisecond)
	slowOK.End("ok")
	if got := len(rec.SlowSnapshot()); got != 2 {
		t.Fatalf("slow reservoir holds %d, want 2 after a slow ok trace", got)
	}
	if got := r.Snapshot().Counter(traceSlowName); got != 2 {
		t.Fatalf("slow counter = %d", got)
	}

	// A burst of healthy traffic may flush the ring but not the reservoir.
	rec.SetSlowThreshold(time.Hour)
	for i := 0; i < DefaultTraceRing+1; i++ {
		tr := rec.Start("session")
		tr.End("ok")
	}
	if got := len(rec.SlowSnapshot()); got != 2 {
		t.Fatalf("healthy burst flushed the slow reservoir to %d", got)
	}
}

func TestHeadSampling(t *testing.T) {
	r := NewRegistry()
	rec := r.Recorder()
	rec.SetSampleRate(0)
	for i := 0; i < 50; i++ {
		if tr := rec.Start("session"); tr != nil {
			t.Fatal("rate 0 must sample nothing")
		}
	}
	// A nil trace is a functional no-op end to end.
	var tr *Trace
	tr.Root().Child("query").SetAttr("workers", "le_4")
	tr.End("ok")
	if tr.ID() != 0 || tr.Context(nil).Traced() {
		t.Fatal("nil trace must read as untraced")
	}

	// Remote ids are never re-sampled: the origin already decided.
	remote := rec.StartRemote(TraceID(42), "session")
	if remote == nil || remote.ID() != 42 {
		t.Fatalf("StartRemote under rate 0 = %v", remote)
	}
	remote.End("ok")
	snaps := rec.Snapshot()
	if len(snaps) != 1 || !snaps[0].Remote {
		t.Fatalf("remote trace not retained: %+v", snaps)
	}

	rec.SetSampleRate(1)
	if rec.Start("session") == nil {
		t.Fatal("rate 1 must sample everything")
	}
}

func TestSpanMisuseSemantics(t *testing.T) {
	r := NewRegistry()
	rec := r.Recorder()
	tr := rec.Start("session")
	sp := tr.Root().Child("query")
	sp.End("ok")

	// Frozen after End: mutators are no-ops, Child returns a safe nil.
	sp.AddRetry()
	sp.SetAttr("workers", "le_4")
	if c := sp.Child("lsp"); c != nil {
		t.Fatal("Child after End must return nil")
	}
	sp.End("error") // first End wins
	tr.End("ok")

	s := rec.Snapshot()[0].Root.Children[0]
	if s.Outcome != "ok" || s.Retries != 0 || len(s.Attrs) != 0 || len(s.Children) != 0 {
		t.Fatalf("post-End mutation leaked: %+v", s)
	}
}

func TestSpanConcurrentDoubleEnd(t *testing.T) {
	r := NewRegistry()
	rec := r.Recorder()
	for i := 0; i < 20; i++ {
		tr := rec.Start("session")
		var wg sync.WaitGroup
		for j := 0; j < 4; j++ {
			wg.Add(1)
			outcome := "ok"
			if j%2 == 1 {
				outcome = "error"
			}
			go func() {
				defer wg.Done()
				tr.End(outcome)
			}()
		}
		wg.Wait()
	}
	// Exactly one completion per trace, concurrent Ends notwithstanding.
	if got := r.Snapshot().Counter(traceCompletedName); got != 20 {
		t.Fatalf("completed = %d, want 20", got)
	}
}

func TestTraceDump(t *testing.T) {
	r := NewRegistry()
	rec := r.Recorder()
	tr := rec.Start("session")
	tr.End("ok")

	d := rec.Dump("watchdog")
	if d.Reason != "watchdog" || len(d.Recent) != 1 {
		t.Fatalf("dump = %+v", d)
	}
	// Dynamic reasons clamp: the reason is part of the JSON surface.
	if d := rec.Dump("tenant=acme corp"); d.Reason != OtherValue {
		t.Fatalf("hostile reason survived as %q", d.Reason)
	}
	if !strings.Contains(string(d.JSON()), `"reason"`) {
		t.Fatalf("dump JSON malformed: %s", d.JSON())
	}
	if got := r.Snapshot().Counter(traceDumpsName); got != 2 {
		t.Fatalf("dump counter = %d", got)
	}

	var nilRec *Recorder
	if nilRec.Dump("watchdog") != nil {
		t.Fatal("nil recorder must dump nil")
	}
}

func TestSpanAttachForwardsToTraceNode(t *testing.T) {
	r := NewRegistry()
	rec := r.Recorder()
	tr := rec.Start("session")
	node := tr.Root().Child("lsp")
	sp := r.StartSpan("lsp").Attach(node)
	sp.AddRetry()
	sp.End("timeout")
	tr.End("error")

	got := rec.Snapshot()[0].Root.Children[0]
	if got.Outcome != "timeout" || got.Retries != 1 {
		t.Fatalf("attached node = %+v, want the metric span's outcome and retries", got)
	}
	// Attach is nil-safe in both directions.
	r.StartSpan("lsp").Attach(nil).End("ok")
	var nilSpan *Span
	nilSpan.Attach(node).End("ok")
}

func TestBucketLabels(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{{0, "le_1"}, {1, "le_1"}, {2, "le_2"}, {3, "le_4"}, {101, "le_128"}, {16384, "le_16384"}, {20000, "gt_16384"}}
	for _, c := range cases {
		if got := CountBucketLabel(c.n); got != c.want {
			t.Errorf("CountBucketLabel(%d) = %q, want %q", c.n, got, c.want)
		}
	}
	durations := []struct {
		d    time.Duration
		want string
	}{{5 * time.Millisecond, "le_10ms"}, {100 * time.Millisecond, "le_100ms"}, {3 * time.Second, "gt_2s"}}
	for _, c := range durations {
		if got := DurationBucketLabel(c.d); got != c.want {
			t.Errorf("DurationBucketLabel(%v) = %q, want %q", c.d, got, c.want)
		}
	}
	// Every producible bucket label is inside the closed catalog.
	for n := 0; n < 40000; n += 7 {
		if !AllowedTraceAttr("workers", CountBucketLabel(n)) {
			t.Fatalf("CountBucketLabel(%d) = %q escapes the catalog", n, CountBucketLabel(n))
		}
	}
	for d := time.Duration(0); d < 5*time.Second; d += 13 * time.Millisecond {
		if !AllowedTraceAttr("retry_after", DurationBucketLabel(d)) {
			t.Fatalf("DurationBucketLabel(%v) escapes the catalog", d)
		}
	}
}

func TestRecorderStartIncrementsCounters(t *testing.T) {
	r := NewRegistry()
	rec := r.Recorder()
	rec.Start("session").End("ok")
	rec.StartRemote(7, "session").End("ok")
	s := r.Snapshot()
	for name, want := range map[string]int64{
		traceStartedName:   1,
		traceRemoteName:    1,
		traceCompletedName: 2,
	} {
		if got := s.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestTraceIDStringFormat(t *testing.T) {
	if got := TraceID(0xab).String(); got != fmt.Sprintf("%016x", 0xab) {
		t.Fatalf("TraceID string = %q", got)
	}
}
