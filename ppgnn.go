// Package ppgnn is a privacy-preserving group k-nearest-neighbor (kGNN)
// search library, implementing Wu, Lin, Zhang, Wang and Chen, "Privacy
// Preserving Group Nearest Neighbor Search", EDBT 2018.
//
// A group of n mobile users retrieves the top-k POIs minimizing a monotone
// aggregate of their distances from a location-based service provider
// (LSP), with four privacy guarantees:
//
//	I   — each user's location is hidden from the LSP among d locations;
//	II  — the group query and answer are hidden among δ ≥ d candidates;
//	III — users learn nothing beyond the requested answer;
//	IV  — each user's location stays hidden from the other n−1 users, even
//	      if they all collude (the answer is sanitized against the
//	      inequality attack).
//
// # Quickstart
//
//	pois := ppgnn.SyntheticDataset(1, 10000)
//	server := ppgnn.NewServer(pois, ppgnn.UnitSpace)
//
//	params := ppgnn.DefaultParams(3) // a group of three users
//	group, err := ppgnn.NewGroup(params, []ppgnn.Point{
//		{X: 0.21, Y: 0.35}, {X: 0.25, Y: 0.31}, {X: 0.23, Y: 0.40},
//	}, nil)
//	if err != nil { ... }
//
//	res, err := group.Run(ppgnn.Local(server), nil)
//	for _, p := range res.Points {
//		fmt.Println("meeting place:", p)
//	}
//
// The protocol variants (PPGNN, PPGNN-OPT, Naive), the full-collusion
// answer sanitation, and the cost meters reproduce the paper's evaluation;
// see DESIGN.md and EXPERIMENTS.md.
package ppgnn

import (
	"io"
	"math/rand"

	"ppgnn/internal/core"
	"ppgnn/internal/cost"
	"ppgnn/internal/dataset"
	"ppgnn/internal/encode"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/group"
	"ppgnn/internal/paillier"
	"ppgnn/internal/rtree"
	"ppgnn/internal/transport"
)

// Point is a planar location.
type Point = geo.Point

// Rect is an axis-aligned rectangle (the location space).
type Rect = geo.Rect

// UnitSpace is the normalized unit-square location space used by the
// paper's experiments.
var UnitSpace = geo.UnitRect

// POI is a point of interest in the LSP's database.
type POI = rtree.Item

// Aggregate selects the cost function F: Sum, Max or Min.
type Aggregate = gnn.Aggregate

// Aggregate functions (Eqn 1).
const (
	Sum = gnn.Sum
	Max = gnn.Max
	Min = gnn.Min
)

// SearchResult is one ranked POI of a plaintext group query.
type SearchResult = gnn.Result

// Params collects the protocol parameters (Table 3).
type Params = core.Params

// Variant selects the protocol flavour.
type Variant = core.Variant

// Protocol variants.
const (
	PPGNN    = core.VariantPPGNN
	PPGNNOPT = core.VariantOPT
	Naive    = core.VariantNaive
)

// DefaultParams returns the paper's default parameterization for a group
// of n users: d=25, δ=100 (δ=d for n=1), k=8, θ0=0.05, 1024-bit keys,
// F=sum.
func DefaultParams(n int) Params { return core.DefaultParams(n) }

// Server is the LSP: it owns the POI database (R-tree indexed, dynamic)
// and processes queries.
type Server = core.LSP

// NewServer builds an LSP over the POI database.
func NewServer(pois []POI, space Rect) *Server { return core.NewLSP(pois, space) }

// IndexOptions selects the POI index layout for NewIndexedServer:
// Shards > 1 partitions the database across parallel shard R-trees, and
// PruneGrid puts the hierarchical pruning grid in front of them. Answers
// are byte-identical to NewServer's; sharded indexes are static
// (Insert/Delete panic — rebuild instead).
type IndexOptions = core.IndexOptions

// NewIndexedServer is NewServer with an explicit index layout.
func NewIndexedServer(pois []POI, space Rect, opts IndexOptions) *Server {
	return core.NewIndexedLSP(pois, space, opts)
}

// Group is the client side: the n users and their coordinator.
type Group = core.Group

// NewGroup validates parameters, solves the partition-parameter program
// (Eqn 7–10), and generates the group's key pair. A nil rng seeds from the
// current time.
func NewGroup(p Params, locations []Point, rng *rand.Rand) (*Group, error) {
	return core.NewGroup(p, locations, rng)
}

// ThresholdGroup is a Group whose answer decryption requires t of the n
// users to cooperate (no single user — coordinator included — can decrypt
// alone). See examples/threshold.
type ThresholdGroup = core.ThresholdGroup

// NewThresholdGroup builds a group with a (t, n)-threshold Paillier key
// (Damgård–Jurik threshold decryption). Key generation uses safe primes
// and is slower than NewGroup.
func NewThresholdGroup(p Params, locations []Point, rng *rand.Rand, t int) (*ThresholdGroup, error) {
	return core.NewThresholdGroup(p, locations, rng, t)
}

// Result is a decoded query answer.
type Result = core.Result

// Record is one POI record of an answer (32-bit quantized coordinates and,
// when Params.IncludeIDs is set, the POI identifier).
type Record = encode.Record

// Service abstracts the LSP endpoint a Group queries.
type Service = core.Service

// Local wraps an in-process Server as a Service. Costs incurred by the
// server are attributed to the same meter passed to Group.Run.
func Local(s *Server) Service { return core.LocalService{LSP: s} }

// LocalMetered is Local with the LSP computation attributed to meter.
func LocalMetered(s *Server, meter *Meter) Service {
	return core.LocalService{LSP: s, Meter: meter}
}

// Meter accumulates the paper's three cost metrics for a protocol run.
type Meter = cost.Meter

// CostSnapshot is a frozen view of a Meter.
type CostSnapshot = cost.Snapshot

// ListenAndServe exposes a Server on a TCP address and returns the
// listening endpoint. Close it to stop serving.
func ListenAndServe(s *Server, addr string) (*transport.Server, error) {
	srv := transport.NewServer(s)
	if _, err := srv.Listen(addr); err != nil {
		return nil, err
	}
	return srv, nil
}

// Dial connects to a remote Server; the returned client implements
// Service over a single connection with no retries. Use NewPool for
// concurrent queries and fault tolerance.
func Dial(addr string) (*transport.Client, error) { return transport.Dial(addr) }

// Pool is a fault-tolerant Service over a bounded pool of connections to
// a remote Server: automatic reconnect, retry with exponential backoff
// and jitter for transient failures, and per-query deadlines. See
// DESIGN.md "Transport reliability" for the retry semantics.
type Pool = transport.Pool

// NewPool returns a Pool serving queries to addr with default sizing;
// adjust its exported fields before the first query.
func NewPool(addr string) *Pool { return transport.NewPool(addr) }

// SequoiaDataset returns the deterministic Sequoia-substitute database
// (62,556 clustered POIs in the unit square; see DESIGN.md §5).
func SequoiaDataset() []POI { return dataset.Sequoia(dataset.DefaultSeed) }

// SyntheticDataset generates n clustered POIs with the given seed.
func SyntheticDataset(seed int64, n int) []POI { return dataset.Synthetic(seed, n) }

// LoadDataset reads a whitespace-separated point file and normalizes it
// into the unit square (accepts the real Sequoia file).
func LoadDataset(r io.Reader) ([]POI, error) { return dataset.Load(r) }

// LoadDatasetFile is LoadDataset over a path.
func LoadDatasetFile(path string) ([]POI, error) { return dataset.LoadFile(path) }

// Coordinator is the u_c side of a distributed group session: it holds
// only its own location and key material, and collects the other members'
// contributions over links (see GroupSession).
type Coordinator = core.Coordinator

// NewCoordinator builds a plain-mode coordinator for a roster of
// p.N users (coordinator included); it alone can decrypt answers.
func NewCoordinator(p Params, loc Point, rng *rand.Rand) (*Coordinator, error) {
	return core.NewCoordinator(p, loc, rng)
}

// KeyShare is one user's share of a (t, n)-threshold key.
type KeyShare = paillier.KeyShare

// NewThresholdCoordinator builds a threshold-mode coordinator: the
// returned shares belong to the members, in roster order (the coordinator
// keeps the first share itself).
func NewThresholdCoordinator(p Params, loc Point, rng *rand.Rand, t int) (*Coordinator, []*KeyShare, error) {
	return core.NewThresholdCoordinator(p, loc, rng, t)
}

// GroupMember is the member side of a distributed group session: it
// answers contribution requests (and, holding a key share, partial-
// decryption requests) behind an in-process link or a MemberServer.
type GroupMember = group.Member

// NewGroupMember returns a member at loc; assign TK and Share for
// threshold mode.
func NewGroupMember(loc Point, rng *rand.Rand) *GroupMember {
	return group.NewMember(loc, nil, rng)
}

// MemberLink is one coordinator↔member channel.
type MemberLink = group.Link

// InProcessMember links a member living in the same process.
func InProcessMember(m *GroupMember) MemberLink { return group.NewProcLink(m) }

// DialGroupMember links a member served by a MemberServer at addr.
func DialGroupMember(addr string) MemberLink { return group.DialMember(addr) }

// GroupSession runs one quorum group query: collect contributions from
// the members (re-partitioning as dropouts shrink the roster), query the
// LSP, and decrypt — jointly in threshold mode. Dropouts beyond n−t fail
// fast with ErrQuorumLost; malformed or equivocating members are ejected
// with ErrBadContribution. See DESIGN.md §8.
type GroupSession = group.Session

// SessionConfig tunes a GroupSession (quorum, per-member deadline,
// retry/backoff schedule).
type SessionConfig = group.Config

// SessionOutcome reports how a session ended: result, contributors, and
// every ejected member with its typed error.
type SessionOutcome = group.Outcome

// NewSession wires a coordinator to its member links; a session runs one
// query.
func NewSession(c *Coordinator, links []MemberLink, cfg SessionConfig) (*GroupSession, error) {
	return group.NewSession(c, links, cfg)
}

// ErrQuorumLost reports that a group session lost so many members that
// no quorum can complete it; match with errors.Is.
var ErrQuorumLost = core.ErrQuorumLost

// ErrBadContribution reports a malformed, duplicate, or equivocating
// member contribution; match with errors.Is.
var ErrBadContribution = core.ErrBadContribution

// MemberServer exposes a GroupMember on a TCP address.
type MemberServer = transport.MemberServer

// ServeMember exposes a member on a TCP address; dial it with
// DialGroupMember. Close it to stop serving.
func ServeMember(m *GroupMember, addr string) (*MemberServer, error) {
	srv := transport.NewMemberServer(m)
	if _, err := srv.Listen(addr); err != nil {
		return nil, err
	}
	return srv, nil
}
