// Benchmarks of the parallel homomorphic pipeline: each family runs the
// serial path (worker width 1) against the pooled path (one worker per
// core) over identical inputs, so CI's bench-gate job can diff them. The
// names are chosen to match the gate's selection regex:
//
//	go test -run '^$' -bench 'Paillier|LSP|Pipeline' -benchtime 1x -count 3
package ppgnn

import (
	"context"
	"math/big"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"ppgnn/internal/core"
	"ppgnn/internal/cost"
	"ppgnn/internal/paillier"
	"ppgnn/internal/parallel"
)

// benchWidths names the two pool widths every family compares. On a
// single-core runner both are width 1; the bench-gate job runs on
// multi-core CI hardware where "parallel" means one worker per core.
var benchWidths = []struct {
	name  string
	width int
}{
	{"serial", 1},
	{"parallel", runtime.GOMAXPROCS(0)},
}

var parBenchEnv struct {
	once sync.Once
	key  *paillier.PrivateKey
	ms   []*big.Int
	cts  []*paillier.Ciphertext
}

func parBenchSetup(b *testing.B) {
	b.Helper()
	parBenchEnv.once.Do(func() {
		key, err := paillier.GenerateKey(nil, benchKeyBits)
		if err != nil {
			panic(err)
		}
		parBenchEnv.key = key
		parBenchEnv.ms = make([]*big.Int, 64)
		for i := range parBenchEnv.ms {
			parBenchEnv.ms[i] = big.NewInt(int64(1000 + i))
		}
		parBenchEnv.cts, err = key.PublicKey.EncryptBatch(
			context.Background(), parallel.New(1), nil, parBenchEnv.ms, 1)
		if err != nil {
			panic(err)
		}
	})
}

func BenchmarkPaillierEncryptBatch(b *testing.B) {
	parBenchSetup(b)
	for _, w := range benchWidths {
		b.Run(w.name, func(b *testing.B) {
			pool := parallel.New(w.width)
			for i := 0; i < b.N; i++ {
				if _, err := parBenchEnv.key.PublicKey.EncryptBatch(
					context.Background(), pool, nil, parBenchEnv.ms, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPaillierDecryptBatch(b *testing.B) {
	parBenchSetup(b)
	for _, w := range benchWidths {
		b.Run(w.name, func(b *testing.B) {
			pool := parallel.New(w.width)
			for i := 0; i < b.N; i++ {
				if _, err := parBenchEnv.key.DecryptBatch(
					context.Background(), pool, parBenchEnv.cts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLSPQueryPhase times core.LSP.Process — the server-side query
// phase the paper's Figures 5/6 measure — on one fixed replayed query.
func BenchmarkLSPQueryPhase(b *testing.B) {
	benchSetup(b)
	rng := rand.New(rand.NewSource(3))
	p := core.DefaultParams(4)
	p.KeyBits = benchKeyBits
	g, err := core.NewGroup(p, randomPoints(rng, 4), rng)
	if err != nil {
		b.Fatal(err)
	}
	var m cost.Meter
	q, locs, err := g.BuildQuery(&m)
	if err != nil {
		b.Fatal(err)
	}
	lsp := core.NewLSP(benchEnv.pois, UnitSpace)
	for _, w := range benchWidths {
		b.Run(w.name, func(b *testing.B) {
			lsp.Workers = w.width
			for i := 0; i < b.N; i++ {
				var rm cost.Meter
				if _, err := lsp.Process(q, locs, &rm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineQuery times a full protocol round trip in-process —
// client indicator encryption, LSP selection, and answer decryption all
// drawing from the same pool width.
func BenchmarkPipelineQuery(b *testing.B) {
	benchSetup(b)
	for _, w := range benchWidths {
		b.Run(w.name, func(b *testing.B) {
			prev := parallel.Default().Workers()
			parallel.SetDefaultWorkers(w.width)
			defer parallel.SetDefaultWorkers(prev)
			rng := rand.New(rand.NewSource(5))
			p := core.DefaultParams(4)
			p.KeyBits = benchKeyBits
			g, err := core.NewGroup(p, randomPoints(rng, 4), rng)
			if err != nil {
				b.Fatal(err)
			}
			lsp := core.NewLSP(benchEnv.pois, UnitSpace)
			lsp.Workers = w.width
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var m cost.Meter
				if _, err := g.Run(core.LocalService{LSP: lsp, Meter: &m}, &m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func randomPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}
