#!/bin/sh
# Observability smoke test: start ppgnn-lsp in two-tenant config mode
# with -metrics-addr, run one traced remote query (TCP member links)
# against it, and require:
#   - /metrics to serve a JSON snapshot with the build info block, the
#     LSP-side phase histogram, and the server counters;
#   - /traces to serve the query's trace — same trace id as the client's
#     -trace-out file — with a span tree covering every phase, wall time
#     that accounts for the children, and zero attribute keys or values
#     outside the closed catalog;
#   - /traces/slow to serve well-formed (empty is fine) JSON.
set -eu

workdir=$(mktemp -d)
trap 'kill "$lsp_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/ppgnn-lsp" ./cmd/ppgnn-lsp
go build -o "$workdir/ppgnn" ./cmd/ppgnn

cat >"$workdir/cfg.json" <<'CFG'
{
  "tenants": [
    {"id": "alpha", "synthetic": 500, "seed": 7, "max_sessions": 4},
    {"id": "beta", "synthetic": 300, "seed": 9, "max_sessions": 2}
  ],
  "max_in_flight": 8
}
CFG

"$workdir/ppgnn-lsp" -addr 127.0.0.1:19042 -config "$workdir/cfg.json" \
    -metrics-addr 127.0.0.1:19043 -quiet &
lsp_pid=$!

# Wait for the metrics endpoint to come up (the daemon logs it first).
i=0
until curl -sf http://127.0.0.1:19043/metrics >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && { echo "metrics endpoint never came up" >&2; exit 1; }
    sleep 0.2
done

# One real group query: coordinator + two members over local TCP links,
# tenant alpha, trace dumped to a file for the id cross-check.
"$workdir/ppgnn" -connect 127.0.0.1:19042 -tenant alpha -quorum-t 2 \
    -members-tcp -keybits 256 -d 6 -delta 12 -k 4 -variant ppgnn -seed 7 \
    -trace-out "$workdir/client-trace.json" 0.2,0.3 0.25,0.35 0.4,0.5 >/dev/null

curl -sf http://127.0.0.1:19043/metrics >"$workdir/snap.json"
curl -sf http://127.0.0.1:19043/traces >"$workdir/traces.json"
curl -sf http://127.0.0.1:19043/traces/slow >"$workdir/slow.json"

SNAP="$workdir/snap.json" TRACES="$workdir/traces.json" \
SLOW="$workdir/slow.json" CLIENT="$workdir/client-trace.json" python3 - <<'PY'
import json
import os
import re

with open(os.environ["SNAP"]) as f:
    snap = json.load(f)
hists = {(h["name"], h["labels"].get("phase", "")) for h in snap["histograms"] if h.get("labels")}
counters = {c["name"]: c["value"] for c in snap["counters"]}

assert ("ppgnn_phase_seconds", "lsp") in hists, f"lsp phase histogram missing: {sorted(hists)}"
assert "transport_server_sessions_total" in counters, f"server session counter missing: {sorted(counters)}"
assert "transport_server_shed_total" in counters, "shed counter missing"
assert "paillier_ops_total" in counters, f"paillier op counter missing: {sorted(counters)}"
assert counters.get("ppgnn_trace_remote_total", 0) >= 1, \
    f"server adopted no remote trace: {counters.get('ppgnn_trace_remote_total')}"

# Build/runtime identity block rides the same document.
build = snap["build"]
assert build["go_version"].startswith("go"), f"bogus go_version: {build}"
assert build["num_cpu"] >= 1 and build["uptime_seconds"] > 0, f"bogus build block: {build}"

# Redaction spot-check from the outside: label values are short enum
# words (the degree enum uses "1"/"2"), never coordinates, hex blobs, or
# session ids. The authoritative check is internal/obs/privacy_test.go.
for section in ("counters", "gauges", "histograms"):
    for m in snap[section]:
        for k, v in (m.get("labels") or {}).items():
            assert re.fullmatch(r"[a-z0-9_]{1,16}", v), f"suspicious label {k}={v!r} on {m['name']}"

# ---- Flight recorder assertions -------------------------------------

# The closed trace-attribute catalog (internal/obs/catalog.go). Any key
# or value outside this grammar fails the smoke test.
ATTR_KEYS = {"tenant", "admission", "cause", "workers", "candidates", "retry_after"}
ENUM = re.compile(r"^[a-z0-9_]{1,16}$")
BUCKET = re.compile(r"^(le|gt)_[0-9]+(ms|s)?$")
PHASES = {"session", "collect", "partition", "query", "lsp", "decrypt"}
SLACK = 0.1  # seconds; matches internal/experiments/traces.go

def check_span(span, path="root"):
    phases = {span["phase"]}
    assert ENUM.fullmatch(span["phase"]), f"{path}: open-ended phase {span['phase']!r}"
    assert ENUM.fullmatch(span["outcome"]), f"{path}: open-ended outcome {span['outcome']!r}"
    child_sum = 0.0
    for i, c in enumerate(span.get("children") or []):
        assert c["duration_seconds"] <= span["duration_seconds"] + SLACK, \
            f"{path}.{i}: child {c['phase']} outlasts parent"
        child_sum += c["duration_seconds"]
        phases |= check_span(c, f"{path}.{c['phase']}")
    assert child_sum <= span["duration_seconds"] + SLACK, \
        f"{path}: children sum {child_sum:.4f}s exceeds span {span['duration_seconds']:.4f}s"
    for k, v in (span.get("attrs") or {}).items():
        assert k in ATTR_KEYS, f"{path}: attribute key {k!r} outside the closed catalog"
        assert ENUM.fullmatch(v) or BUCKET.fullmatch(v), f"{path}: suspicious attr {k}={v!r}"
    return phases

with open(os.environ["CLIENT"]) as f:
    client = json.load(f)
assert len(client["recent"]) == 1, f"client recorded {len(client['recent'])} traces, want 1"
ct = client["recent"][0]
assert re.fullmatch(r"[0-9a-f]{16}", ct["trace_id"]), f"bad trace id {ct['trace_id']!r}"
phases = check_span(ct["root"])
missing = PHASES - phases
assert not missing, f"client trace missing phases {sorted(missing)}; saw {sorted(phases)}"
assert ct["root"]["outcome"] == "ok", f"client trace outcome {ct['root']['outcome']!r}"

with open(os.environ["TRACES"]) as f:
    server = json.load(f)["traces"]
assert server, "server flight recorder is empty after a traced query"
match = [t for t in server if t["trace_id"] == ct["trace_id"]]
assert match, f"client trace {ct['trace_id']} absent from /traces"
st = match[0]
assert st.get("remote"), "server trace not marked remote"
assert st["root"]["phase"] == "session", f"server root phase {st['root']['phase']!r}"
for t in server:
    check_span(t["root"], f"traces[{t['trace_id']}]")
attrs = st["root"].get("attrs") or {}
assert attrs.get("admission") == "ok", f"server admission attr: {attrs}"
assert attrs.get("tenant", "").startswith("t"), f"server tenant slot attr: {attrs}"

with open(os.environ["SLOW"]) as f:
    slow = json.load(f)["traces"]
for t in slow:
    check_span(t["root"], f"slow[{t['trace_id']}]")

print("metrics smoke ok:", len(snap["counters"]), "counters,",
      len(snap["histograms"]), "histograms,", len(server), "traces,",
      "trace", ct["trace_id"], "spans", sorted(phases))
PY
