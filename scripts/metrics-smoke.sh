#!/bin/sh
# Metrics-endpoint smoke test: start ppgnn-lsp with -metrics-addr, run
# one remote query against it, and require the endpoint to serve a JSON
# snapshot containing the LSP-side phase histogram and server counters.
set -eu

workdir=$(mktemp -d)
trap 'kill "$lsp_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/ppgnn-lsp" ./cmd/ppgnn-lsp
go build -o "$workdir/ppgnn" ./cmd/ppgnn

"$workdir/ppgnn-lsp" -addr 127.0.0.1:19042 -metrics-addr 127.0.0.1:19043 -quiet &
lsp_pid=$!

# Wait for the metrics endpoint to come up (the daemon logs it first).
i=0
until curl -sf http://127.0.0.1:19043/metrics >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && { echo "metrics endpoint never came up" >&2; exit 1; }
    sleep 0.2
done

"$workdir/ppgnn" -connect 127.0.0.1:19042 -keybits 256 -d 6 -delta 12 -k 4 \
    -variant ppgnn -seed 7 0.2,0.3 0.25,0.35 >/dev/null

curl -sf http://127.0.0.1:19043/metrics >"$workdir/snap.json"
SNAP="$workdir/snap.json" python3 - <<'PY'
import json
import os

with open(os.environ["SNAP"]) as f:
    snap = json.load(f)
hists = {(h["name"], h["labels"].get("phase", "")) for h in snap["histograms"] if h.get("labels")}
counters = {c["name"] for c in snap["counters"]}

assert ("ppgnn_phase_seconds", "lsp") in hists, f"lsp phase histogram missing: {sorted(hists)}"
assert "transport_server_sessions_total" in counters, f"server session counter missing: {sorted(counters)}"
assert "transport_server_shed_total" in counters, "shed counter missing"
assert "paillier_ops_total" in counters, f"paillier op counter missing: {sorted(counters)}"

# Redaction spot-check from the outside: label values are short enum
# words (the degree enum uses "1"/"2"), never coordinates, hex blobs, or
# session ids. The authoritative check is internal/obs/privacy_test.go.
import re
for section in ("counters", "gauges", "histograms"):
    for m in snap[section]:
        for k, v in (m.get("labels") or {}).items():
            assert re.fullmatch(r"[a-z0-9_]{1,16}", v), f"suspicious label {k}={v!r} on {m['name']}"
print("metrics smoke ok:", len(snap["counters"]), "counters,", len(snap["histograms"]), "histograms")
PY
