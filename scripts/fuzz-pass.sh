#!/usr/bin/env bash
# fuzz-pass.sh — run every fuzz target of the given packages for a short
# burst (FUZZTIME, default 15s each): the CI smoke pass. `go test -fuzz`
# accepts only one target per invocation, so enumerate with -list first.
set -euo pipefail
cd "$(dirname "$0")/.."

fuzztime=${FUZZTIME:-15s}
pkgs=("$@")
if [ ${#pkgs[@]} -eq 0 ]; then
  pkgs=(./internal/core ./internal/wire ./internal/modmath ./internal/svc ./internal/shard ./internal/parallel)
fi

for pkg in "${pkgs[@]}"; do
  targets=$(go test -list '^Fuzz' "$pkg" | grep '^Fuzz' || true)
  if [ -z "$targets" ]; then
    echo "fuzz-pass: no fuzz targets in $pkg" >&2
    exit 1
  fi
  for t in $targets; do
    echo "=== fuzz $pkg $t ($fuzztime)"
    go test -run '^$' -fuzz "^${t}\$" -fuzztime "$fuzztime" "$pkg"
  done
done
