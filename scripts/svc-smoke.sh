#!/bin/sh
# Service-lifecycle smoke test: boot a two-tenant ppgnn-lsp from a config
# file, probe /healthz and /readyz, run real queries against both tenants,
# push a SIGHUP reload mid-load (then a corrupt one, which must be
# rejected while the old epoch keeps serving), and finally run the seeded
# chaos soak and require a clean oracle record in its report.
set -eu

workdir=$(mktemp -d)
trap 'kill "$lsp_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/ppgnn-lsp" ./cmd/ppgnn-lsp
go build -o "$workdir/ppgnn" ./cmd/ppgnn
go build -o "$workdir/ppgnn-experiments" ./cmd/ppgnn-experiments

cfg="$workdir/svc.json"
cat >"$cfg" <<'EOF'
{"tenants": [
  {"id": "default", "synthetic": 400, "seed": 3, "max_sessions": 8},
  {"id": "alpha", "synthetic": 400, "seed": 7, "max_sessions": 8}
]}
EOF

"$workdir/ppgnn-lsp" -addr 127.0.0.1:19052 -metrics-addr 127.0.0.1:19053 \
    -config "$cfg" -quiet &
lsp_pid=$!

i=0
until curl -sf http://127.0.0.1:19053/healthz >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && { echo "health endpoint never came up" >&2; exit 1; }
    sleep 0.2
done

# Liveness and readiness both green on a freshly applied first epoch.
[ "$(curl -sf http://127.0.0.1:19053/healthz)" = "ok" ]
[ "$(curl -sf http://127.0.0.1:19053/readyz)" = "ready" ]

query() {
    "$workdir/ppgnn" -connect 127.0.0.1:19052 ${1:+-tenant "$1"} \
        -keybits 256 -d 5 -delta 10 -k 4 -variant ppgnn -seed 7 \
        0.2,0.3 0.25,0.35 >/dev/null
}

# Both tenants answer: the default tenant with no tenant frame (wire
# compatibility) and alpha via the tenant frame.
query ""
query alpha

# SIGHUP mid-load: flip alpha's quota, reload, and keep querying across
# the swap. A background query runs while the signal lands.
sed 's/"max_sessions": 8}$/"max_sessions": 6}/' "$cfg" >"$cfg.new" && mv "$cfg.new" "$cfg"
query alpha &
bg=$!
kill -HUP "$lsp_pid"
wait "$bg"

i=0
until [ "$(curl -sf http://127.0.0.1:19053/readyz)" = "ready" ]; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && { echo "service never re-readied after SIGHUP" >&2; exit 1; }
    sleep 0.2
done
query alpha

# A corrupt config must be rejected: the service stays ready on the old
# epoch and still answers.
echo '{"tenants": [{]' >"$cfg"
kill -HUP "$lsp_pid"
sleep 0.5
[ "$(curl -sf http://127.0.0.1:19053/readyz)" = "ready" ]
query alpha

# The reload counters must record exactly what happened: one applied
# (plus the initial epoch, which is not counted), one rejected.
curl -sf http://127.0.0.1:19053/metrics >"$workdir/snap.json"
SNAP="$workdir/snap.json" python3 - <<'PY'
import json, os

with open(os.environ["SNAP"]) as f:
    snap = json.load(f)
reloads = {c["labels"]["result"]: c["value"]
           for c in snap["counters"] if c["name"] == "svc_reloads_total"}
assert reloads.get("applied") == 1, f"applied reloads: {reloads}"
assert reloads.get("rejected") == 1, f"rejected reloads: {reloads}"
ready = [g for g in snap["gauges"] if g["name"] == "svc_ready"]
assert ready and ready[0]["value"] == 1, f"svc_ready: {ready}"
tenants = [g for g in snap["gauges"] if g["name"] == "svc_tenants"]
assert tenants and tenants[0]["value"] == 2, f"svc_tenants: {tenants}"
print("svc smoke ok: reloads", reloads)
PY

kill "$lsp_pid"
wait "$lsp_pid" 2>/dev/null || true

# The seeded chaos soak: two tenants, reload storm, faultnet dial-kills,
# every answer oracle-checked. The gate exits nonzero on any violation;
# the report assertion below additionally pins the zero-mismatch record.
"$workdir/ppgnn-experiments" -chaos-gate -chaos-measure 3s \
    -chaos-out "$workdir/BENCH_chaos.json"
REPORT="$workdir/BENCH_chaos.json" python3 - <<'PY'
import json, os

with open(os.environ["REPORT"]) as f:
    rep = json.load(f)
for t in rep["tenants"]:
    for stage in t["report"]["stages"]:
        assert stage["oracle_mismatches"] == 0, \
            f"{t['tenant']}/{stage['stage']}: {stage['oracle_mismatches']} mismatches"
    assert t["report"]["abandoned"] == 0, f"{t['tenant']}: abandoned sessions"
assert rep["applied_reloads"] >= 3, rep["applied_reloads"]
assert rep["final_state"] == "ready", rep["final_state"]
print("chaos soak ok: epochs", rep["epochs"], "quota sheds", rep["quota_sheds"])
PY
echo "svc-smoke: PASS"
