package ppgnn_test

import (
	"fmt"
	"math/rand"

	"ppgnn"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
)

// exampleParams keeps the documentation examples fast; production callers
// use DefaultParams unchanged (1024-bit keys, d=25, δ=100).
func exampleParams(n int) ppgnn.Params {
	p := ppgnn.DefaultParams(n)
	p.KeyBits = 256
	p.D = 5
	p.Delta = 10
	if n == 1 {
		p.Delta = p.D
	}
	p.K = 3
	p.NoSanitize = true // deterministic output for the doc examples
	return p
}

// The basic flow: an LSP over a POI database, a group of users, one
// privacy-preserving query.
func Example() {
	server := ppgnn.NewServer(ppgnn.SyntheticDataset(1, 5000), ppgnn.UnitSpace)
	group, err := ppgnn.NewGroup(exampleParams(2), []ppgnn.Point{
		{X: 0.30, Y: 0.30},
		{X: 0.34, Y: 0.28},
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := group.Run(ppgnn.Local(server), nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d meeting places returned\n", len(res.Points))
	// Output: 3 meeting places returned
}

// Cost accounting: a Meter captures the paper's three metrics for a run.
func ExampleMeter() {
	server := ppgnn.NewServer(ppgnn.SyntheticDataset(2, 2000), ppgnn.UnitSpace)
	group, err := ppgnn.NewGroup(exampleParams(2), []ppgnn.Point{
		{X: 0.5, Y: 0.5}, {X: 0.52, Y: 0.48},
	}, rand.New(rand.NewSource(2)))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var meter ppgnn.Meter
	if _, err := group.Run(ppgnn.LocalMetered(server, &meter), &meter); err != nil {
		fmt.Println("error:", err)
		return
	}
	s := meter.Snapshot()
	fmt.Println("communication recorded:", s.TotalBytes() > 0)
	fmt.Println("LSP time recorded:", s.LSPTime > 0)
	// Output:
	// communication recorded: true
	// LSP time recorded: true
}

// The black box: any group-query engine can replace kGNN. Here the LSP
// ranks POIs by weighted travel cost (one user drives, one walks).
func ExampleServer_blackBox() {
	pois := ppgnn.SyntheticDataset(3, 2000)
	server := ppgnn.NewServer(pois, ppgnn.UnitSpace)
	weighted := &gnn.Weighted{Tree: server.Tree(), Weights: []float64{1, 3}} // walker counts 3×
	server.Search = func(query []geo.Point, k int, _ gnn.Aggregate) []gnn.Result {
		return weighted.Search(query, k)
	}
	group, err := ppgnn.NewGroup(exampleParams(2), []ppgnn.Point{
		{X: 0.2, Y: 0.2}, // driver
		{X: 0.8, Y: 0.8}, // walker
	}, rand.New(rand.NewSource(3)))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := group.Run(ppgnn.Local(server), nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The top POI sits much nearer the higher-weighted walker.
	top := res.Points[0]
	fmt.Println("closer to the walker:", top.Dist(ppgnn.Point{X: 0.8, Y: 0.8}) < top.Dist(ppgnn.Point{X: 0.2, Y: 0.2}))
	// Output: closer to the walker: true
}

// Threshold decryption: t of n users must cooperate to decrypt.
func ExampleNewThresholdGroup() {
	server := ppgnn.NewServer(ppgnn.SyntheticDataset(4, 2000), ppgnn.UnitSpace)
	p := exampleParams(3)
	p.KeyBits = 192 // safe primes; demo-sized
	tg, err := ppgnn.NewThresholdGroup(p, []ppgnn.Point{
		{X: 0.4, Y: 0.4}, {X: 0.45, Y: 0.42}, {X: 0.41, Y: 0.38},
	}, rand.New(rand.NewSource(4)), 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := tg.Run(ppgnn.Local(server), nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("jointly decrypted %d POIs\n", len(res.Points))
	// Output: jointly decrypted 3 POIs
}
