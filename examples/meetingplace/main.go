// Meeting place with hostile colleagues: demonstrates Privacy IV — the
// full-user-collusion inequality attack of Section 5 and how the answer
// sanitation defeats it.
//
// Two business competitors and their partners query for meeting places.
// After the answer arrives, all users but one collude: they intersect the
// ranking inequalities F(p_i) ≤ F(p_{i+1}) to corner the remaining user.
// We run the attack against both an unsanitized (PPGNN-NAS) and a
// sanitized answer and report how much of the map the victim could hide in.
//
//	go run ./examples/meetingplace
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppgnn"
	"ppgnn/internal/gnn"
	"ppgnn/internal/sanitize"
)

func main() {
	server := ppgnn.NewServer(ppgnn.SequoiaDataset(), ppgnn.UnitSpace)

	users := []ppgnn.Point{
		{X: 0.30, Y: 0.40}, // the victim, u1
		{X: 0.60, Y: 0.55},
		{X: 0.45, Y: 0.70},
		{X: 0.55, Y: 0.35},
	}
	const victim = 0
	const theta0 = 0.05 // u1 demands to stay hidden in ≥5% of the map

	run := func(noSanitize bool) []ppgnn.Point {
		p := ppgnn.DefaultParams(len(users))
		p.KeyBits = 512
		p.K = 16
		p.Theta0 = theta0
		p.NoSanitize = noSanitize
		group, err := ppgnn.NewGroup(p, users, rand.New(rand.NewSource(7)))
		if err != nil {
			log.Fatal(err)
		}
		res, err := group.Run(ppgnn.Local(server), nil)
		if err != nil {
			log.Fatal(err)
		}
		return res.Points
	}

	// attackRegion estimates the fraction of the map consistent with the
	// answer from the colluders' point of view (Section 5.1).
	attackRegion := func(answer []ppgnn.Point) float64 {
		results := make([]gnn.Result, len(answer))
		for i, pt := range answer {
			results[i] = gnn.Result{}
			results[i].Item.P = pt
		}
		cfg := sanitize.Config{Theta0: theta0, Space: ppgnn.UnitSpace, Agg: gnn.Sum}
		return cfg.AttackTheta(rand.New(rand.NewSource(99)), results, users, victim, 40000)
	}

	raw := run(true)
	safe := run(false)

	fmt.Printf("unsanitized answer: %d POIs returned\n", len(raw))
	thetaRaw := attackRegion(raw)
	fmt.Printf("  colluders corner u1 into %.2f%% of the map — %s\n\n",
		100*thetaRaw, verdict(thetaRaw, theta0))

	fmt.Printf("sanitized answer:   %d POIs returned (longest safe prefix)\n", len(safe))
	thetaSafe := attackRegion(safe)
	fmt.Printf("  colluders corner u1 into %.2f%% of the map — %s\n\n",
		100*thetaSafe, verdict(thetaSafe, theta0))

	fmt.Println("meeting places actually delivered to the group:")
	for i, p := range safe {
		fmt.Printf("  %d. (%.4f, %.4f)\n", i+1, p.X, p.Y)
	}
}

func verdict(theta, theta0 float64) string {
	if theta > theta0 {
		return fmt.Sprintf("SAFE (> θ0 = %.0f%%)", 100*theta0)
	}
	return fmt.Sprintf("ATTACK SUCCEEDS (≤ θ0 = %.0f%%)", 100*theta0)
}
