// PPMLD: the black-box swap of Sections 1 and 9. The PPGNN protocol treats
// query answering as a black box, so replacing the kGNN engine with a
// (non-private) meeting-location-determination algorithm yields a privacy-
// preserving MLD without touching the protocol.
//
// Here the plugged-in engine ranks POIs by a "fairness-aware" objective —
// distance to the group centroid plus a penalty on the spread between the
// nearest and farthest user — something plain kGNN cannot express.
//
//	go run ./examples/ppmld
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"ppgnn"
	"ppgnn/internal/core"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
)

func main() {
	pois := ppgnn.SequoiaDataset()
	server := ppgnn.NewServer(pois, ppgnn.UnitSpace)

	// Replace the kGNN black box with a custom meeting-location engine.
	// The protocol — dummies, candidate queries, private selection,
	// sanitation — is untouched.
	server.Search = func(query []geo.Point, k int, _ gnn.Aggregate) []gnn.Result {
		centroid := geo.Centroid(query)
		// Pre-filter to the 200 POIs nearest the centroid, then apply the
		// fairness objective.
		near := server.Tree().NearestK(centroid, 200)
		scored := make([]gnn.Result, len(near))
		for i, nb := range near {
			minD, maxD := nb.Item.P.Dist(query[0]), nb.Item.P.Dist(query[0])
			for _, q := range query[1:] {
				d := nb.Item.P.Dist(q)
				if d < minD {
					minD = d
				}
				if d > maxD {
					maxD = d
				}
			}
			// Centroid distance + unfairness penalty.
			scored[i] = gnn.Result{Item: nb.Item, Cost: nb.Dist + 0.5*(maxD-minD)}
		}
		sort.Slice(scored, func(i, j int) bool {
			if scored[i].Cost != scored[j].Cost {
				return scored[i].Cost < scored[j].Cost
			}
			return scored[i].Item.ID < scored[j].Item.ID
		})
		if len(scored) > k {
			scored = scored[:k]
		}
		return scored
	}

	users := []ppgnn.Point{
		{X: 0.20, Y: 0.20},
		{X: 0.80, Y: 0.25},
		{X: 0.50, Y: 0.85},
	}
	p := ppgnn.DefaultParams(len(users))
	p.KeyBits = 512
	p.K = 5
	group, err := core.NewGroup(p, users, rand.New(rand.NewSource(4)))
	if err != nil {
		log.Fatal(err)
	}
	res, err := group.Run(ppgnn.Local(server), nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fair meeting locations (custom MLD engine inside the PPGNN protocol):")
	for i, pt := range res.Points {
		var ds []float64
		for _, u := range users {
			ds = append(ds, pt.Dist(u))
		}
		fmt.Printf("  %d. (%.4f, %.4f)  per-user distances %.3f / %.3f / %.3f\n",
			i+1, pt.X, pt.Y, ds[0], ds[1], ds[2])
	}
	fmt.Println("\nAll four privacy guarantees still hold: the engine swap changed")
	fmt.Println("only the plaintext ranking the LSP computes per candidate query.")
}
