// Quickstart: three users jointly retrieve their best meeting places
// without revealing their locations to the service or to each other.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppgnn"
)

func main() {
	// The LSP's POI database: the bundled 62,556-point Sequoia substitute.
	server := ppgnn.NewServer(ppgnn.SequoiaDataset(), ppgnn.UnitSpace)

	// A group of three users. DefaultParams follows the paper's Table 3:
	// d=25 dummies per user, δ=100 candidate queries, k=8, θ0=0.05.
	params := ppgnn.DefaultParams(3)
	params.KeyBits = 512 // demo-sized keys; the paper (and production) use 1024

	group, err := ppgnn.NewGroup(params, []ppgnn.Point{
		{X: 0.21, Y: 0.35},
		{X: 0.25, Y: 0.31},
		{X: 0.23, Y: 0.40},
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}

	// Run the full protocol: query generation with dummies and an encrypted
	// indicator vector, homomorphic private selection on the server, answer
	// sanitation against colluding group members, and decryption.
	var meter ppgnn.Meter
	res, err := group.Run(ppgnn.LocalMetered(server, &meter), &meter)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top meeting places (minimizing total travel distance):\n")
	for i, p := range res.Points {
		fmt.Printf("  %d. (%.4f, %.4f)\n", i+1, p.X, p.Y)
	}
	fmt.Printf("\nwhat it cost: %v\n", meter.Snapshot())
	fmt.Println("\nThe LSP saw 25 possible locations per user and returned exactly")
	fmt.Println("one encrypted answer out of ≥100 candidate queries — it cannot")
	fmt.Println("tell which was real, and the users learned nothing else about")
	fmt.Println("the database.")
}
