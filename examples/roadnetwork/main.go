// Road-network metric: the problem statement (Section 2.1) allows any
// distance function, and the protocol's black box makes plugging in a
// road-network kGNN engine a one-liner on the LSP. Drivers meeting in a
// city grid get POIs ranked by actual driving distance, with the same four
// privacy guarantees.
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppgnn"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/roadnet"
)

func main() {
	// A synthetic city: a 30×30 perturbed street grid with expressway
	// shortcuts, and 10,000 POIs.
	city := roadnet.NewGrid(42, 30, 30, 0.4)
	pois := ppgnn.SyntheticDataset(7, 10000)
	fmt.Printf("road network: %d intersections, connected=%v\n", city.NodeCount(), city.Connected())

	server := ppgnn.NewServer(pois, ppgnn.UnitSpace)
	// Swap the Euclidean MBM engine for network-distance search.
	netSum := roadnet.NewSearcher(city, pois, gnn.Sum)
	netMax := roadnet.NewSearcher(city, pois, gnn.Max)
	server.Search = func(query []geo.Point, k int, agg gnn.Aggregate) []gnn.Result {
		if agg == gnn.Max {
			return netMax.Search(query, k)
		}
		return netSum.Search(query, k)
	}

	users := []ppgnn.Point{
		{X: 0.12, Y: 0.18},
		{X: 0.85, Y: 0.22},
		{X: 0.40, Y: 0.90},
	}
	p := ppgnn.DefaultParams(len(users))
	p.KeyBits = 512
	p.K = 4
	group, err := ppgnn.NewGroup(p, users, rand.New(rand.NewSource(6)))
	if err != nil {
		log.Fatal(err)
	}
	res, err := group.Run(ppgnn.Local(server), nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nbest meeting POIs by total driving distance:")
	for i, pt := range res.Points {
		total := 0.0
		for _, u := range users {
			total += city.Dist(u, pt)
		}
		fmt.Printf("  %d. (%.4f, %.4f)  total drive %.3f  (straight-line sum %.3f)\n",
			i+1, pt.X, pt.Y, total, sumEuclid(pt, users))
	}
	fmt.Println("\nThe LSP ran Dijkstra per candidate query; the privacy layer")
	fmt.Println("(dummies, candidate queries, private selection, sanitation)")
	fmt.Println("never looked inside the metric.")
}

func sumEuclid(p ppgnn.Point, users []ppgnn.Point) float64 {
	s := 0.0
	for _, u := range users {
		s += p.Dist(u)
	}
	return s
}
