// Single-user query (Section 3) and the exact-vs-approximate trade-off
// against the APNN baseline, including a dynamic database update that
// PPGNN absorbs instantly while APNN must re-precompute its whole grid.
//
//	go run ./examples/singleuser
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ppgnn"
	"ppgnn/internal/baseline/apnn"
	"ppgnn/internal/cost"
	"ppgnn/internal/paillier"
)

func main() {
	pois := ppgnn.SequoiaDataset()
	server := ppgnn.NewServer(pois, ppgnn.UnitSpace)
	me := ppgnn.Point{X: 0.512, Y: 0.487}

	// --- PPGNN, n=1: exact answer, no precomputation.
	p := ppgnn.DefaultParams(1) // δ = d = 25 for a single user
	p.KeyBits = 512
	p.K = 5
	group, err := ppgnn.NewGroup(p, []ppgnn.Point{me}, rand.New(rand.NewSource(2)))
	if err != nil {
		log.Fatal(err)
	}
	var meter ppgnn.Meter
	res, err := group.Run(ppgnn.LocalMetered(server, &meter), &meter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PPGNN (exact kNN, location hidden among d=25):")
	for i, pt := range res.Points {
		fmt.Printf("  %d. (%.4f, %.4f)  dist=%.5f\n", i+1, pt.X, pt.Y, pt.Dist(me))
	}
	fmt.Printf("  cost: %v\n\n", meter.Snapshot())

	// --- APNN baseline: grid precomputation, approximate answers.
	setup := time.Now()
	apnnSrv, err := apnn.NewServer(pois, ppgnn.UnitSpace, 64, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("APNN precomputation over a 64×64 grid: %v\n", time.Since(setup).Round(time.Millisecond))
	key, err := paillier.GenerateKey(nil, 512)
	if err != nil {
		log.Fatal(err)
	}
	cli := &apnn.Client{B: 5, Key: key, Rng: rand.New(rand.NewSource(3))}
	var am cost.Meter
	recs, err := cli.Query(apnnSrv, me, 5, &am)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("APNN (approximate: answers precomputed at cell centers):")
	for i, r := range recs {
		pt := r.Point(ppgnn.UnitSpace)
		fmt.Printf("  %d. (%.4f, %.4f)  dist=%.5f\n", i+1, pt.X, pt.Y, pt.Dist(me))
	}
	fmt.Printf("  cost: %v\n\n", am.Snapshot())

	// --- Dynamic database: a new POI opens right next to the user.
	fresh := ppgnn.POI{ID: 999999, P: ppgnn.Point{X: 0.5125, Y: 0.4871}}
	server.Insert(fresh)
	res2, err := group.Run(ppgnn.Local(server), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after inserting a new POI next door, PPGNN immediately returns it:")
	fmt.Printf("  new top-1: (%.4f, %.4f)\n", res2.Points[0].X, res2.Points[0].Y)
	fmt.Println("  (APNN would have to recompute all 4096 grid answers to notice.)")
}
