// Network deployment: an LSP served over TCP (the base-station channel of
// the system model) and a group querying it remotely, with real wire-level
// byte accounting.
//
//	go run ./examples/network
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppgnn"
)

func main() {
	// Start the LSP daemon on an ephemeral port (in production this is
	// cmd/ppgnn-lsp on its own host).
	server := ppgnn.NewServer(ppgnn.SequoiaDataset(), ppgnn.UnitSpace)
	srv, err := ppgnn.ListenAndServe(server, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Addr()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LSP listening on %s\n", addr)

	// The group connects through the framed TCP transport.
	cli, err := ppgnn.Dial(addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	var meter ppgnn.Meter
	cli.Meter = &meter

	p := ppgnn.DefaultParams(4)
	p.KeyBits = 512
	p.Variant = ppgnn.PPGNNOPT // the communication-optimal variant
	group, err := ppgnn.NewGroup(p, []ppgnn.Point{
		{X: 0.31, Y: 0.42}, {X: 0.36, Y: 0.40}, {X: 0.29, Y: 0.45}, {X: 0.33, Y: 0.47},
	}, rand.New(rand.NewSource(5)))
	if err != nil {
		log.Fatal(err)
	}

	for round := 1; round <= 2; round++ {
		res, err := group.Run(cli, &meter)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nquery %d: %d POIs\n", round, len(res.Points))
		for i, pt := range res.Points {
			fmt.Printf("  %d. (%.4f, %.4f)\n", i+1, pt.X, pt.Y)
		}
	}
	fmt.Printf("\nwire-level costs over both queries: %v\n", meter.Snapshot())
}
