// Mobility and repeated queries: what the paper's single-query model does
// not cover. A commuter queries for cafés every morning from home. With
// fresh dummies every day, the LSP can intersect the location sets and
// isolate the home after a handful of queries; with a cached location set
// (Group.CacheSets) its view never improves beyond 1/d. When the user
// moves, the cache must be invalidated — which resets the anonymity clock.
//
//	go run ./examples/mobility
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppgnn"
	"ppgnn/internal/attack"
	"ppgnn/internal/core"
	"ppgnn/internal/geo"
)

func main() {
	server := ppgnn.NewServer(ppgnn.SequoiaDataset(), ppgnn.UnitSpace)
	home := ppgnn.Point{X: 0.62, Y: 0.44}
	office := ppgnn.Point{X: 0.31, Y: 0.70}

	p := ppgnn.DefaultParams(2)
	p.KeyBits = 512
	p.K = 3
	friend := ppgnn.Point{X: 0.60, Y: 0.47}

	run := func(cache bool, days int) int {
		group, err := ppgnn.NewGroup(p, []ppgnn.Point{home, friend}, rand.New(rand.NewSource(8)))
		if err != nil {
			log.Fatal(err)
		}
		group.CacheSets = cache
		var observed [][]geo.Point // what the LSP records for user 0
		for day := 0; day < days; day++ {
			q, locs, err := group.BuildQuery(nil)
			if err != nil {
				log.Fatal(err)
			}
			observed = append(observed, locs[0].Set)
			if _, err := server.Process(q, locs, nil); err != nil {
				log.Fatal(err)
			}
		}
		return len(attack.Intersection(observed, 1e-9))
	}

	const days = 6
	fmt.Printf("%d daily queries from home, fresh dummies:  LSP narrows user to %d candidate location(s)\n",
		days, run(false, days))
	fmt.Printf("%d daily queries from home, cached dummies: LSP narrows user to %d candidate location(s)\n",
		days, run(true, days))

	// Moving invalidates the cache; the new place starts fresh.
	group, err := core.NewGroup(p, []ppgnn.Point{home, friend}, rand.New(rand.NewSource(9)))
	if err != nil {
		log.Fatal(err)
	}
	group.CacheSets = true
	if _, _, err := group.BuildQuery(nil); err != nil {
		log.Fatal(err)
	}
	group.Locations[0] = office
	group.InvalidateCache()
	_, locs, err := group.BuildQuery(nil)
	if err != nil {
		log.Fatal(err)
	}
	containsOffice := false
	for _, l := range locs[0].Set {
		if l == office {
			containsOffice = true
		}
	}
	fmt.Printf("\nafter moving to the office and invalidating the cache,\n")
	fmt.Printf("the fresh location set hides the new location: %v\n", containsOffice)
	fmt.Println("\n(Each anonymity set is d=25 strong per place; the cached-set defense")
	fmt.Println("trades query unlinkability for location safety across repeats.)")
}
