// Threshold decryption: removing the last trust point. In the base
// protocol the coordinator alone holds the Paillier secret key and is the
// first to see every answer. With a (t, n)-threshold key (Damgård–Jurik),
// each user holds one key share and any t must cooperate per decryption —
// the LSP side of the protocol is unchanged, since it only ever sees the
// public modulus.
//
//	go run ./examples/threshold
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ppgnn"
)

func main() {
	server := ppgnn.NewServer(ppgnn.SequoiaDataset(), ppgnn.UnitSpace)

	users := []ppgnn.Point{
		{X: 0.42, Y: 0.33},
		{X: 0.47, Y: 0.38},
		{X: 0.40, Y: 0.40},
		{X: 0.45, Y: 0.30},
	}
	p := ppgnn.DefaultParams(len(users))
	p.KeyBits = 512 // safe-prime generation; demo-sized
	p.K = 5

	start := time.Now()
	group, err := ppgnn.NewThresholdGroup(p, users, rand.New(rand.NewSource(9)), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated a 3-of-%d threshold key in %v (safe primes)\n",
		len(users), time.Since(start).Round(time.Millisecond))

	var meter ppgnn.Meter
	res, err := group.Run(ppgnn.LocalMetered(server, &meter), &meter)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nmeeting places (jointly decrypted by 3 of %d users):\n", len(users))
	for i, pt := range res.Points {
		fmt.Printf("  %d. (%.4f, %.4f)\n", i+1, pt.X, pt.Y)
	}
	s := meter.Snapshot()
	fmt.Printf("\ncosts: %v\n", s)
	fmt.Println("\nNo single user can decrypt an intercepted answer: any 2 shares")
	fmt.Println("are information-theoretically independent of the secret exponent.")
}
