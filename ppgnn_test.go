package ppgnn

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fastParams(n int) Params {
	p := DefaultParams(n)
	p.KeyBits = 256
	p.D = 5
	p.Delta = 10
	if n == 1 {
		p.Delta = p.D
	}
	p.K = 4
	return p
}

func TestPublicAPIQuickstart(t *testing.T) {
	pois := SyntheticDataset(1, 5000)
	server := NewServer(pois, UnitSpace)
	p := fastParams(3)
	group, err := NewGroup(p, []Point{
		{X: 0.21, Y: 0.35}, {X: 0.25, Y: 0.31}, {X: 0.23, Y: 0.40},
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	var m Meter
	res, err := group.Run(LocalMetered(server, &m), &m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("empty answer")
	}
	s := m.Snapshot()
	if s.TotalBytes() == 0 || s.LSPTime == 0 {
		t.Fatalf("cost accounting incomplete: %v", s)
	}
	if !strings.Contains(s.String(), "comm=") {
		t.Fatal("snapshot String() malformed")
	}
}

func TestPublicAPIVariants(t *testing.T) {
	pois := SyntheticDataset(2, 2000)
	server := NewServer(pois, UnitSpace)
	locs := []Point{{X: 0.4, Y: 0.4}, {X: 0.6, Y: 0.6}}
	var first []Point
	for _, v := range []Variant{PPGNN, PPGNNOPT, Naive} {
		p := fastParams(2)
		p.Variant = v
		p.NoSanitize = true
		g, err := NewGroup(p, locs, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		res, err := g.Run(Local(server), nil)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if first == nil {
			first = res.Points
			continue
		}
		if len(res.Points) != len(first) {
			t.Fatalf("%v: variant answers differ in length", v)
		}
		for i := range first {
			if res.Points[i] != first[i] {
				t.Fatalf("%v: variant answers differ at rank %d", v, i)
			}
		}
	}
}

func TestPublicAPIOverTCP(t *testing.T) {
	pois := SyntheticDataset(3, 1000)
	server := NewServer(pois, UnitSpace)
	srv, err := ListenAndServe(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Addr()
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	p := fastParams(2)
	p.NoSanitize = true
	g, err := NewGroup(p, []Point{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.2}}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(cli, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != p.K {
		t.Fatalf("got %d POIs over TCP, want %d", len(res.Points), p.K)
	}
}

func TestDatasets(t *testing.T) {
	if got := len(SequoiaDataset()); got != 62556 {
		t.Fatalf("Sequoia substitute has %d POIs", got)
	}
	if got := len(SyntheticDataset(7, 123)); got != 123 {
		t.Fatalf("synthetic has %d POIs", got)
	}
	pois, err := LoadDataset(strings.NewReader("1 2\n3 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pois) != 2 {
		t.Fatalf("loaded %d POIs", len(pois))
	}
}

func TestLoadDatasetFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pois.txt")
	if err := os.WriteFile(path, []byte("0 0\n10 0\n10 10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pois, err := LoadDatasetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pois) != 3 {
		t.Fatalf("loaded %d POIs", len(pois))
	}
	if _, err := LoadDatasetFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}
