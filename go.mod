module ppgnn

go 1.22
