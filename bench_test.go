// Benchmarks regenerating the paper's evaluation, one family per figure
// and table (see DESIGN.md §3 for the index). Each sub-benchmark times a
// full protocol round trip at one point of the paper's sweep and reports
// the communication cost and the user/LSP time split as custom metrics:
//
//	comm-B/query     total communication bytes per query
//	user-ms/query    summed user computation
//	lsp-ms/query     LSP computation
//	pois/answer      POIs returned after sanitation (Figure 7)
//
// Benchmarks use 512-bit keys so the whole suite completes in minutes; the
// figure shapes are key-size independent (EXPERIMENTS.md records 1024-bit
// harness runs).
//
//	go test -bench=. -benchmem
package ppgnn

import (
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ppgnn/internal/baseline/apnn"
	"ppgnn/internal/baseline/glp"
	"ppgnn/internal/baseline/ippf"
	"ppgnn/internal/core"
	"ppgnn/internal/cost"
	"ppgnn/internal/gnn"
	"ppgnn/internal/paillier"
)

const benchKeyBits = 512

var benchEnv struct {
	once    sync.Once
	pois    []POI
	server  *Server
	ippfSrv *ippf.Server
	glpSrv  *glp.Server
	apnnSrv *apnn.Server
	apnnKey *paillier.PrivateKey
}

func benchSetup(b *testing.B) {
	b.Helper()
	benchEnv.once.Do(func() {
		benchEnv.pois = SequoiaDataset()
		benchEnv.server = NewServer(benchEnv.pois, UnitSpace)
		benchEnv.ippfSrv = ippf.NewServer(benchEnv.pois, UnitSpace)
		benchEnv.glpSrv = glp.NewServer(benchEnv.pois, UnitSpace)
		var err error
		benchEnv.apnnSrv, err = apnn.NewServer(benchEnv.pois, UnitSpace, 64, 32)
		if err != nil {
			panic(err)
		}
		benchEnv.apnnKey, err = paillier.GenerateKey(nil, benchKeyBits)
		if err != nil {
			panic(err)
		}
	})
	if benchEnv.server == nil {
		b.Fatal("bench environment failed to initialize")
	}
}

// benchParams is the Table 3 default setting at bench key size.
func benchParams(n int, variant Variant) Params {
	p := DefaultParams(n)
	p.KeyBits = benchKeyBits
	p.Variant = variant
	return p
}

// runQueryBench times b.N full round trips for one parameter point and
// reports the per-query cost metrics.
func runQueryBench(b *testing.B, p Params) {
	benchSetup(b)
	rng := rand.New(rand.NewSource(11))
	locs := make([]Point, p.N)
	for i := range locs {
		locs[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	g, err := core.NewGroup(p, locs, rng)
	if err != nil {
		b.Fatal(err)
	}
	var meter Meter
	pois := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := g.Run(core.LocalService{LSP: benchEnv.server, Meter: &meter}, &meter)
		if err != nil {
			b.Fatal(err)
		}
		pois += len(res.Records)
	}
	b.StopTimer()
	reportCost(b, meter.Snapshot(), b.N)
	b.ReportMetric(float64(pois)/float64(b.N), "pois/answer")
}

func reportCost(b *testing.B, s cost.Snapshot, n int) {
	b.Helper()
	avg := s.Scale(n)
	b.ReportMetric(float64(avg.TotalBytes()), "comm-B/query")
	b.ReportMetric(float64(avg.UserTime)/float64(time.Millisecond), "user-ms/query")
	b.ReportMetric(float64(avg.LSPTime)/float64(time.Millisecond), "lsp-ms/query")
}

// BenchmarkFig5_VaryD: Figure 5a–c (n=1, vary d, PPGNN vs PPGNN-OPT).
func BenchmarkFig5_VaryD(b *testing.B) {
	for _, d := range []int{5, 25, 50} {
		for _, v := range []Variant{PPGNN, PPGNNOPT} {
			b.Run(fmt.Sprintf("d=%d/%v", d, v), func(b *testing.B) {
				p := benchParams(1, v)
				p.D, p.Delta = d, d
				runQueryBench(b, p)
			})
		}
	}
}

// BenchmarkFig5_VaryK: Figure 5d–f (n=1, vary k, + APNN).
func BenchmarkFig5_VaryK(b *testing.B) {
	for _, k := range []int{2, 8, 32} {
		for _, v := range []Variant{PPGNN, PPGNNOPT} {
			b.Run(fmt.Sprintf("k=%d/%v", k, v), func(b *testing.B) {
				p := benchParams(1, v)
				p.K = k
				runQueryBench(b, p)
			})
		}
		b.Run(fmt.Sprintf("k=%d/APNN", k), func(b *testing.B) {
			benchSetup(b)
			cli := &apnn.Client{B: 5, Key: benchEnv.apnnKey, Rng: rand.New(rand.NewSource(13))}
			var meter Meter
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loc := Point{X: cli.Rng.Float64(), Y: cli.Rng.Float64()}
				if _, err := cli.Query(benchEnv.apnnSrv, loc, k, &meter); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportCost(b, meter.Snapshot(), b.N)
		})
	}
}

// BenchmarkFig6_VaryDelta: Figure 6a–c (n=8, vary δ, + Naive).
func BenchmarkFig6_VaryDelta(b *testing.B) {
	for _, delta := range []int{25, 100, 200} {
		for _, v := range []Variant{PPGNN, PPGNNOPT, Naive} {
			b.Run(fmt.Sprintf("delta=%d/%v", delta, v), func(b *testing.B) {
				p := benchParams(8, v)
				p.Delta = delta
				runQueryBench(b, p)
			})
		}
	}
}

// BenchmarkFig6_VaryK: Figure 6d–f (n=8, vary k).
func BenchmarkFig6_VaryK(b *testing.B) {
	for _, k := range []int{2, 8, 32} {
		for _, v := range []Variant{PPGNN, PPGNNOPT, Naive} {
			b.Run(fmt.Sprintf("k=%d/%v", k, v), func(b *testing.B) {
				p := benchParams(8, v)
				p.K = k
				runQueryBench(b, p)
			})
		}
	}
}

// BenchmarkFig6_VaryN: Figure 6g–i (vary n).
func BenchmarkFig6_VaryN(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		for _, v := range []Variant{PPGNN, PPGNNOPT, Naive} {
			b.Run(fmt.Sprintf("n=%d/%v", n, v), func(b *testing.B) {
				runQueryBench(b, benchParams(n, v))
			})
		}
	}
}

// BenchmarkFig6_VaryTheta: Figure 6j–l (vary θ0).
func BenchmarkFig6_VaryTheta(b *testing.B) {
	for _, th := range []float64{0.01, 0.05, 0.1} {
		for _, v := range []Variant{PPGNN, PPGNNOPT, Naive} {
			b.Run(fmt.Sprintf("theta0=%v/%v", th, v), func(b *testing.B) {
				p := benchParams(8, v)
				p.Theta0 = th
				runQueryBench(b, p)
			})
		}
	}
}

// BenchmarkFig7_POIsReturned: Figure 7a–c — the pois/answer metric is the
// figure's y-axis (θ0 = 0.01 as in the paper's Figure 7 defaults).
func BenchmarkFig7_POIsReturned(b *testing.B) {
	for _, k := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			p := benchParams(8, PPGNN)
			p.K = k
			p.Theta0 = 0.01
			runQueryBench(b, p)
		})
	}
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := benchParams(n, PPGNN)
			p.Theta0 = 0.01
			runQueryBench(b, p)
		})
	}
	for _, th := range []float64{0.01, 0.05, 0.1} {
		b.Run(fmt.Sprintf("theta0=%v", th), func(b *testing.B) {
			p := benchParams(8, PPGNN)
			p.Theta0 = th
			runQueryBench(b, p)
		})
	}
}

// benchIPPF and benchGLP time the baselines at one (n, k) point.
func benchIPPF(b *testing.B, n, k int) {
	benchSetup(b)
	rng := rand.New(rand.NewSource(17))
	locs := make([]Point, n)
	for i := range locs {
		locs[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	g := &ippf.Group{Locations: locs, RectArea: 5e-6, Agg: gnn.Sum, Space: UnitSpace, Rng: rng}
	var meter Meter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Query(benchEnv.ippfSrv, k, &meter); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportCost(b, meter.Snapshot(), b.N)
}

func benchGLP(b *testing.B, n, k int) {
	benchSetup(b)
	rng := rand.New(rand.NewSource(19))
	locs := make([]Point, n)
	for i := range locs {
		locs[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	g := &glp.Group{Locations: locs, Space: UnitSpace, KeyBits: benchKeyBits, Rng: rng}
	var meter Meter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Query(benchEnv.glpSrv, k, &meter); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportCost(b, meter.Snapshot(), b.N)
}

// BenchmarkFig8_VaryK: Figure 8a–c (PPGNN, PPGNN-NAS, IPPF, GLP; vary k).
func BenchmarkFig8_VaryK(b *testing.B) {
	for _, k := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("k=%d/PPGNN", k), func(b *testing.B) {
			p := benchParams(8, PPGNN)
			p.K = k
			runQueryBench(b, p)
		})
		b.Run(fmt.Sprintf("k=%d/PPGNN-NAS", k), func(b *testing.B) {
			p := benchParams(8, PPGNN)
			p.K = k
			p.NoSanitize = true
			runQueryBench(b, p)
		})
		b.Run(fmt.Sprintf("k=%d/IPPF", k), func(b *testing.B) { benchIPPF(b, 8, k) })
		b.Run(fmt.Sprintf("k=%d/GLP", k), func(b *testing.B) { benchGLP(b, 8, k) })
	}
}

// BenchmarkFig8_VaryN: Figure 8d–f (vary n).
func BenchmarkFig8_VaryN(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("n=%d/PPGNN", n), func(b *testing.B) {
			runQueryBench(b, benchParams(n, PPGNN))
		})
		b.Run(fmt.Sprintf("n=%d/PPGNN-NAS", n), func(b *testing.B) {
			p := benchParams(n, PPGNN)
			p.NoSanitize = true
			runQueryBench(b, p)
		})
		b.Run(fmt.Sprintf("n=%d/IPPF", n), func(b *testing.B) { benchIPPF(b, n, 8) })
		b.Run(fmt.Sprintf("n=%d/GLP", n), func(b *testing.B) { benchGLP(b, n, 8) })
	}
}

// BenchmarkTable2_PrivateSelection times the LSP's homomorphic selection
// primitive at the two δ' scales of the Table 2 analysis, isolating the
// O(δ'k)·C_e term.
func BenchmarkTable2_PrivateSelection(b *testing.B) {
	benchSetup(b)
	key := benchEnv.apnnKey
	for _, dp := range []int{50, 200} {
		b.Run(fmt.Sprintf("deltaPrime=%d", dp), func(b *testing.B) {
			// Build a 1×δ' plaintext row and an encrypted indicator.
			row := make([]*big.Int, dp)
			for i := range row {
				row[i] = big.NewInt(int64(1000 + i))
			}
			v := make([]*paillier.Ciphertext, dp)
			for i := range v {
				bit := int64(0)
				if i == dp/2 {
					bit = 1
				}
				ct, err := key.EncryptInt64(nil, bit, 1)
				if err != nil {
					b.Fatal(err)
				}
				v[i] = ct
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := key.DotProduct(row, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
